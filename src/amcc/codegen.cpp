#include "amcc/codegen.hpp"

#include <map>
#include <vector>

#include "common/strfmt.hpp"

namespace twochains::amcc {
namespace {

/// What a name refers to during generation.
struct Binding {
  enum Kind { kLocal, kGlobal, kExternGlobal, kFunc, kExternFunc } kind;
  Type type;
  std::uint64_t array_size = 0;  ///< 0 = scalar
  std::int32_t slot = 0;         ///< kLocal: sp-relative offset
  std::string symbol;            ///< globals/functions: asm symbol
};

class Codegen {
 public:
  explicit Codegen(const Unit& unit) : unit_(unit) {}

  StatusOr<std::string> Run() {
    // Unit-level symbol table.
    for (const auto& fn : unit_.functions) {
      Binding b;
      b.kind = fn.is_extern ? Binding::kExternFunc : Binding::kFunc;
      b.type = fn.return_type;
      b.symbol = fn.name;
      if (globals_.contains(fn.name)) {
        return Err(fn.line, "redefinition of '" + fn.name + "'");
      }
      globals_.emplace(fn.name, b);
      func_params_.emplace(fn.name, fn.params.size());
    }
    for (const auto& g : unit_.globals) {
      Binding b;
      b.kind = g.is_extern ? Binding::kExternGlobal : Binding::kGlobal;
      b.type = g.type;
      b.array_size = g.array_size;
      b.symbol = g.name;
      if (globals_.contains(g.name)) {
        return Err(g.line, "redefinition of '" + g.name + "'");
      }
      globals_.emplace(g.name, b);
    }

    // Extern declarations.
    for (const auto& fn : unit_.functions) {
      if (fn.is_extern) Emit(".extern %s", fn.name.c_str());
    }
    for (const auto& g : unit_.globals) {
      if (g.is_extern) Emit(".extern %s", g.name.c_str());
    }

    // Data sections.
    TC_RETURN_IF_ERROR(EmitGlobals());

    // Functions.
    Emit(".text");
    for (const auto& fn : unit_.functions) {
      if (fn.is_extern) continue;
      TC_RETURN_IF_ERROR(EmitFunction(fn));
    }

    // String literal pool.
    if (!strings_.empty()) {
      Emit(".rodata");
      for (std::size_t i = 0; i < strings_.size(); ++i) {
        Emit(".Lstr%zu: .asciz \"%s\"", i, EscapeAsm(strings_[i]).c_str());
      }
    }
    return out_;
  }

 private:
  Status Err(int line, const std::string& msg) const {
    return InvalidArgument(
        StrFormat("%s:%d: %s", unit_.name.c_str(), line, msg.c_str()));
  }

  void Emit(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string line;
    if (n > 0) {
      line.resize(static_cast<std::size_t>(n));
      std::vsnprintf(line.data(), line.size() + 1, fmt, args2);
    }
    va_end(args2);
    out_ += line;
    out_ += '\n';
  }

  static std::string EscapeAsm(const std::string& s) {
    std::string out;
    for (char c : s) {
      switch (c) {
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        case '\0': out += "\\0"; break;
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        default: out += c;
      }
    }
    return out;
  }

  // ------------------------------------------------------------ globals

  Status EmitGlobals() {
    bool have_rodata = false, have_data = false;
    for (const auto& g : unit_.globals) {
      if (g.is_extern) continue;
      (g.is_const ? have_rodata : have_data) = true;
    }
    for (int pass = 0; pass < 2; ++pass) {
      const bool rodata_pass = pass == 0;
      if (rodata_pass && !have_rodata) continue;
      if (!rodata_pass && !have_data) continue;
      Emit(rodata_pass ? ".rodata" : ".data");
      for (const auto& g : unit_.globals) {
        if (g.is_extern || g.is_const != rodata_pass) continue;
        TC_RETURN_IF_ERROR(EmitGlobal(g));
      }
    }
    return Status::Ok();
  }

  Status EmitGlobal(const GlobalDecl& g) {
    if (!g.is_static) Emit(".global %s", g.name.c_str());
    Emit(".align 8");
    const unsigned elem = g.type.ByteSize();
    if (elem == 0) return Err(g.line, "void global");
    const char* dir = elem == 1 ? ".byte"
                      : elem == 2 ? ".half"
                      : elem == 4 ? ".word"
                                  : ".quad";
    const std::uint64_t count = g.array_size == 0 ? 1 : g.array_size;

    if (g.init_string.has_value()) {
      // char buf[N] = "..." or const char* s = "..." (pointer to pool).
      if (g.type.IsPointer()) {
        strings_.push_back(*g.init_string);
        Emit("%s: .quad .Lstr%zu", g.name.c_str(), strings_.size() - 1);
        return Status::Ok();
      }
      if (elem != 1) return Err(g.line, "string initializer on non-char");
      Emit("%s: .asciz \"%s\"", g.name.c_str(),
           EscapeAsm(*g.init_string).c_str());
      const std::uint64_t used = g.init_string->size() + 1;
      if (g.array_size != 0 && used > g.array_size) {
        return Err(g.line, "string longer than array");
      }
      if (g.array_size != 0 && used < g.array_size) {
        Emit(".space %llu",
             static_cast<unsigned long long>(g.array_size - used));
      }
      return Status::Ok();
    }
    if (!g.init_list.empty()) {
      if (g.array_size == 0) return Err(g.line, "list initializer on scalar");
      if (g.init_list.size() > g.array_size) {
        return Err(g.line, "too many initializers");
      }
      std::string line = g.name + ": " + dir;
      for (std::size_t i = 0; i < g.init_list.size(); ++i) {
        line += StrFormat("%s %llu", i == 0 ? "" : ",",
                          static_cast<unsigned long long>(g.init_list[i]));
      }
      Emit("%s", line.c_str());
      const std::uint64_t rest = count - g.init_list.size();
      if (rest > 0) {
        Emit(".space %llu", static_cast<unsigned long long>(rest * elem));
      }
      return Status::Ok();
    }
    if (g.init_int.has_value()) {
      if (g.array_size != 0) return Err(g.line, "scalar init on array");
      Emit("%s: %s %llu", g.name.c_str(), dir,
           static_cast<unsigned long long>(*g.init_int));
      return Status::Ok();
    }
    Emit("%s: .space %llu", g.name.c_str(),
         static_cast<unsigned long long>(count * elem));
    return Status::Ok();
  }

  // ----------------------------------------------------------- functions

  Status EmitFunction(const FuncDecl& fn) {
    scopes_.clear();
    scopes_.emplace_back();
    frame_size_ = 16;  // +0: saved lr; +8: pad (keeps sp 16-aligned)
    label_counter_ = 0;
    break_labels_.clear();
    continue_labels_.clear();
    current_fn_ = &fn;

    // Params get slots first.
    for (const auto& param : fn.params) {
      Binding b;
      b.kind = Binding::kLocal;
      b.type = param.type;
      b.slot = static_cast<std::int32_t>(frame_size_);
      frame_size_ += 8;
      if (!param.name.empty()) scopes_.back()[param.name] = b;
    }
    // Pre-assign slots for every declaration in the body (no reuse across
    // blocks: predictable frames beat compact ones here).
    TC_RETURN_IF_ERROR(AssignSlots(fn.body));
    frame_size_ = (frame_size_ + 15) & ~15ull;

    if (!fn.is_static) Emit(".global %s", fn.name.c_str());
    Emit("%s:", fn.name.c_str());
    // Frame: [fp+0] saved lr, [fp+8] saved fp, then params and locals.
    // Locals are fp-relative because expression temporaries and call
    // arguments push/pop through sp.
    Emit("  addi sp, sp, -%llu", static_cast<unsigned long long>(frame_size_));
    Emit("  std lr, [sp+0]");
    Emit("  std fp, [sp+8]");
    Emit("  mov fp, sp");
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      if (fn.params[i].name.empty()) continue;
      const auto& b = scopes_.back().at(fn.params[i].name);
      Emit("  std a%zu, [fp+%d]", i, b.slot);
    }

    for (const auto& stmt : fn.body) {
      TC_RETURN_IF_ERROR(GenStmt(*stmt));
    }

    Emit(".Lret_%s:", fn.name.c_str());
    Emit("  mov sp, fp");  // discards any unbalanced temporaries
    Emit("  ldd lr, [sp+0]");
    Emit("  ldd fp, [sp+8]");
    Emit("  addi sp, sp, %llu", static_cast<unsigned long long>(frame_size_));
    Emit("  ret");
    return Status::Ok();
  }

  /// Walks statements, assigning a stack slot to every declaration.
  Status AssignSlots(const std::vector<StmtPtr>& stmts) {
    for (const auto& stmt : stmts) {
      if (stmt->kind == StmtKind::kDecl) {
        const std::uint64_t bytes =
            stmt->array_size == 0
                ? 8
                : ((stmt->array_size * stmt->decl_type.ByteSize() + 7) & ~7ull);
        slot_of_[stmt.get()] = static_cast<std::int32_t>(frame_size_);
        frame_size_ += bytes;
      }
      TC_RETURN_IF_ERROR(AssignSlots(stmt->body));
      TC_RETURN_IF_ERROR(AssignSlots(stmt->else_body));
      if (stmt->for_init) {
        std::vector<StmtPtr> tmp;  // visit single statement uniformly
        if (stmt->for_init->kind == StmtKind::kDecl) {
          const std::uint64_t bytes =
              stmt->for_init->array_size == 0
                  ? 8
                  : ((stmt->for_init->array_size *
                          stmt->for_init->decl_type.ByteSize() +
                      7) &
                     ~7ull);
          slot_of_[stmt->for_init.get()] =
              static_cast<std::int32_t>(frame_size_);
          frame_size_ += bytes;
        }
      }
    }
    return Status::Ok();
  }

  // ----------------------------------------------------------- name rules

  StatusOr<Binding> Resolve(const std::string& name, int line) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    const auto found = globals_.find(name);
    if (found != globals_.end()) return found->second;
    return Err(line, "use of undeclared identifier '" + name + "'");
  }

  std::string NewLabel(const char* hint) {
    return StrFormat(".L%s_%s_%d", hint, current_fn_->name.c_str(),
                     label_counter_++);
  }

  // ----------------------------------------------------------- statements

  Status GenStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kBlock: {
        scopes_.emplace_back();
        for (const auto& inner : stmt.body) {
          TC_RETURN_IF_ERROR(GenStmt(*inner));
        }
        scopes_.pop_back();
        return Status::Ok();
      }
      case StmtKind::kExpr: {
        TC_ASSIGN_OR_RETURN(const Type ignored, GenExpr(*stmt.expr));
        (void)ignored;
        return Status::Ok();
      }
      case StmtKind::kDecl:
        return GenDecl(stmt);
      case StmtKind::kIf: {
        const std::string else_label = NewLabel("else");
        const std::string end_label = NewLabel("endif");
        TC_ASSIGN_OR_RETURN(const Type ignored, GenExpr(*stmt.expr));
        (void)ignored;
        Emit("  beq t0, zr, %s",
             (stmt.else_body.empty() ? end_label : else_label).c_str());
        for (const auto& inner : stmt.body) {
          TC_RETURN_IF_ERROR(GenStmt(*inner));
        }
        if (!stmt.else_body.empty()) {
          Emit("  jmp %s", end_label.c_str());
          Emit("%s:", else_label.c_str());
          for (const auto& inner : stmt.else_body) {
            TC_RETURN_IF_ERROR(GenStmt(*inner));
          }
        }
        Emit("%s:", end_label.c_str());
        return Status::Ok();
      }
      case StmtKind::kWhile: {
        const std::string head = NewLabel("while");
        const std::string end = NewLabel("endwhile");
        Emit("%s:", head.c_str());
        TC_ASSIGN_OR_RETURN(const Type ignored, GenExpr(*stmt.expr));
        (void)ignored;
        Emit("  beq t0, zr, %s", end.c_str());
        break_labels_.push_back(end);
        continue_labels_.push_back(head);
        for (const auto& inner : stmt.body) {
          TC_RETURN_IF_ERROR(GenStmt(*inner));
        }
        break_labels_.pop_back();
        continue_labels_.pop_back();
        Emit("  jmp %s", head.c_str());
        Emit("%s:", end.c_str());
        return Status::Ok();
      }
      case StmtKind::kFor: {
        const std::string head = NewLabel("for");
        const std::string step = NewLabel("forstep");
        const std::string end = NewLabel("endfor");
        scopes_.emplace_back();  // for-init scope
        if (stmt.for_init) TC_RETURN_IF_ERROR(GenStmt(*stmt.for_init));
        Emit("%s:", head.c_str());
        if (stmt.expr) {
          TC_ASSIGN_OR_RETURN(const Type ignored, GenExpr(*stmt.expr));
          (void)ignored;
          Emit("  beq t0, zr, %s", end.c_str());
        }
        break_labels_.push_back(end);
        continue_labels_.push_back(step);
        for (const auto& inner : stmt.body) {
          TC_RETURN_IF_ERROR(GenStmt(*inner));
        }
        break_labels_.pop_back();
        continue_labels_.pop_back();
        Emit("%s:", step.c_str());
        if (stmt.for_step) {
          TC_ASSIGN_OR_RETURN(const Type ignored, GenExpr(*stmt.for_step));
          (void)ignored;
        }
        Emit("  jmp %s", head.c_str());
        Emit("%s:", end.c_str());
        scopes_.pop_back();
        return Status::Ok();
      }
      case StmtKind::kReturn: {
        if (stmt.expr) {
          TC_ASSIGN_OR_RETURN(const Type ignored, GenExpr(*stmt.expr));
          (void)ignored;
          Emit("  mov a0, t0");
        }
        Emit("  jmp .Lret_%s", current_fn_->name.c_str());
        return Status::Ok();
      }
      case StmtKind::kBreak:
        if (break_labels_.empty()) return Err(stmt.line, "break outside loop");
        Emit("  jmp %s", break_labels_.back().c_str());
        return Status::Ok();
      case StmtKind::kContinue:
        if (continue_labels_.empty()) {
          return Err(stmt.line, "continue outside loop");
        }
        Emit("  jmp %s", continue_labels_.back().c_str());
        return Status::Ok();
    }
    return Err(stmt.line, "unhandled statement");
  }

  Status GenDecl(const Stmt& stmt) {
    Binding b;
    b.kind = Binding::kLocal;
    b.type = stmt.decl_type;
    b.array_size = stmt.array_size;
    b.slot = slot_of_.at(&stmt);
    if (scopes_.back().contains(stmt.decl_name)) {
      return Err(stmt.line, "redeclaration of '" + stmt.decl_name + "'");
    }
    scopes_.back()[stmt.decl_name] = b;
    if (stmt.init) {
      if (stmt.array_size != 0) {
        return Err(stmt.line, "local array initializers are unsupported");
      }
      TC_ASSIGN_OR_RETURN(const Type ignored, GenExpr(*stmt.init));
      (void)ignored;
      TC_RETURN_IF_ERROR(EmitStoreTo(b.type, b.slot));
    }
    return Status::Ok();
  }

  Status EmitStoreTo(const Type& type, std::int32_t slot) {
    switch (type.ByteSize()) {
      case 1: Emit("  stb t0, [fp+%d]", slot); break;
      case 2: Emit("  sth t0, [fp+%d]", slot); break;
      case 4: Emit("  stw t0, [fp+%d]", slot); break;
      default: Emit("  std t0, [fp+%d]", slot); break;
    }
    return Status::Ok();
  }

  // ---------------------------------------------------------- expressions

  /// True if @p e can be generated into an arbitrary register without
  /// disturbing t0 (used to skip the push/pop protocol).
  bool IsLeaf(const Expr& e) const {
    if (e.kind == ExprKind::kIntLit) return true;
    if (e.kind == ExprKind::kIdent) {
      const auto b = Resolve(e.name, e.line);
      return b.ok() && b->kind == Binding::kLocal && b->array_size == 0;
    }
    return false;
  }

  /// Generates a leaf value into register @p reg.
  Status GenLeafInto(const Expr& e, const char* reg, Type* type) {
    if (e.kind == ExprKind::kIntLit) {
      if (e.int_value <= INT32_MAX) {
        Emit("  movi %s, %llu", reg,
             static_cast<unsigned long long>(e.int_value));
      } else {
        Emit("  li %s, %llu", reg,
             static_cast<unsigned long long>(e.int_value));
      }
      *type = kLongType;
      return Status::Ok();
    }
    TC_ASSIGN_OR_RETURN(const Binding b, Resolve(e.name, e.line));
    TC_RETURN_IF_ERROR(EmitLoadLocal(b, reg));
    *type = b.type;
    return Status::Ok();
  }

  Status EmitLoadLocal(const Binding& b, const char* reg) {
    const char* op = nullptr;
    switch (b.type.ByteSize()) {
      case 1: op = b.type.IsUnsigned() ? "ldbu" : "ldb"; break;
      case 2: op = b.type.IsUnsigned() ? "ldhu" : "ldh"; break;
      case 4: op = b.type.IsUnsigned() ? "ldwu" : "ldw"; break;
      default: op = "ldd"; break;
    }
    Emit("  %s %s, [fp+%d]", op, reg, b.slot);
    return Status::Ok();
  }

  void Push(const char* reg) { Emit("  addi sp, sp, -8"); Emit("  std %s, [sp+0]", reg); }
  void Pop(const char* reg) { Emit("  ldd %s, [sp+0]", reg); Emit("  addi sp, sp, 8"); }

  /// Loads a value of @p type from the address in t0, into t0.
  void EmitLoadThroughT0(const Type& type) {
    const char* op = nullptr;
    switch (type.ByteSize()) {
      case 1: op = type.IsUnsigned() ? "ldbu" : "ldb"; break;
      case 2: op = type.IsUnsigned() ? "ldhu" : "ldh"; break;
      case 4: op = type.IsUnsigned() ? "ldwu" : "ldw"; break;
      default: op = "ldd"; break;
    }
    Emit("  %s t0, [t0+0]", op);
  }

  /// Stores t1 (value) through t0 (address) with @p type's width.
  void EmitStoreThroughT0(const Type& type) {
    const char* op = nullptr;
    switch (type.ByteSize()) {
      case 1: op = "stb"; break;
      case 2: op = "sth"; break;
      case 4: op = "stw"; break;
      default: op = "std"; break;
    }
    Emit("  %s t1, [t0+0]", op);
  }

  /// Result: address in t0. Returns the *element* type at that address.
  StatusOr<Type> GenAddr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIdent: {
        TC_ASSIGN_OR_RETURN(const Binding b, Resolve(e.name, e.line));
        switch (b.kind) {
          case Binding::kLocal:
            Emit("  addi t0, fp, %d", b.slot);
            return b.type;
          case Binding::kGlobal:
            Emit("  lea t0, %s", b.symbol.c_str());
            return b.type;
          case Binding::kExternGlobal:
            Emit("  ldg t0, @%s", b.symbol.c_str());
            return b.type;
          default:
            return Err(e.line, "cannot take the address of a function");
        }
      }
      case ExprKind::kUnary:
        if (e.op == "*") {
          TC_ASSIGN_OR_RETURN(const Type ptr, GenExpr(*e.lhs));
          if (!ptr.IsPointer()) return Err(e.line, "dereference of non-pointer");
          return ptr.Pointee();
        }
        return Err(e.line, "expression is not an lvalue");
      case ExprKind::kIndex: {
        TC_ASSIGN_OR_RETURN(const Type base, GenExpr(*e.lhs));
        Type elem;
        if (base.IsPointer()) {
          elem = base.Pointee();
        } else {
          return Err(e.line, "subscript of non-pointer");
        }
        const unsigned scale = elem.ByteSize() == 0 ? 1 : elem.ByteSize();
        if (IsLeaf(*e.rhs)) {
          Type ignored;
          TC_RETURN_IF_ERROR(GenLeafInto(*e.rhs, "t1", &ignored));
        } else {
          Push("t0");
          TC_ASSIGN_OR_RETURN(const Type ignored, GenExpr(*e.rhs));
          (void)ignored;
          Emit("  mov t1, t0");
          Pop("t0");
        }
        if (scale > 1) Emit("  muli t1, t1, %u", scale);
        Emit("  add t0, t0, t1");
        return elem;
      }
      default:
        return Err(e.line, "expression is not an lvalue");
    }
  }

  /// Static type of an expression (for sizeof), no code emitted.
  StatusOr<Type> TypeOf(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kIntLit: return kLongType;
      case ExprKind::kStringLit: return kCharPtrType;
      case ExprKind::kIdent: {
        TC_ASSIGN_OR_RETURN(const Binding b, Resolve(e.name, e.line));
        if (b.array_size != 0) return b.type.PointerTo();
        return b.type;
      }
      case ExprKind::kUnary:
        if (e.op == "*") {
          TC_ASSIGN_OR_RETURN(const Type t, TypeOf(*e.lhs));
          if (!t.IsPointer()) return Err(e.line, "dereference of non-pointer");
          return t.Pointee();
        }
        if (e.op == "&") {
          TC_ASSIGN_OR_RETURN(const Type t, TypeOf(*e.lhs));
          return t.PointerTo();
        }
        return TypeOf(*e.lhs);
      case ExprKind::kBinary: {
        TC_ASSIGN_OR_RETURN(const Type lt, TypeOf(*e.lhs));
        return lt;
      }
      case ExprKind::kAssign: return TypeOf(*e.lhs);
      case ExprKind::kCall: {
        TC_ASSIGN_OR_RETURN(const Binding b, Resolve(e.name, e.line));
        return b.type;
      }
      case ExprKind::kIndex: {
        TC_ASSIGN_OR_RETURN(const Type t, TypeOf(*e.lhs));
        if (!t.IsPointer()) return Err(e.line, "subscript of non-pointer");
        return t.Pointee();
      }
      case ExprKind::kCast: return e.type;
      case ExprKind::kSizeofType:
      case ExprKind::kSizeofExpr:
        return kLongType;
    }
    return kLongType;
  }

  /// Result: value in t0. Returns its static type.
  StatusOr<Type> GenExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit: {
        Type t;
        TC_RETURN_IF_ERROR(GenLeafInto(e, "t0", &t));
        return t;
      }
      case ExprKind::kStringLit: {
        strings_.push_back(e.str_value);
        Emit("  lea t0, .Lstr%zu", strings_.size() - 1);
        return kCharPtrType;
      }
      case ExprKind::kIdent: {
        TC_ASSIGN_OR_RETURN(const Binding b, Resolve(e.name, e.line));
        switch (b.kind) {
          case Binding::kLocal:
            if (b.array_size != 0) {
              Emit("  addi t0, fp, %d", b.slot);
              return b.type.PointerTo();
            }
            TC_RETURN_IF_ERROR(EmitLoadLocal(b, "t0"));
            return b.type;
          case Binding::kGlobal:
            Emit("  lea t0, %s", b.symbol.c_str());
            if (b.array_size != 0) return b.type.PointerTo();
            EmitLoadThroughT0(b.type);
            return b.type;
          case Binding::kExternGlobal:
            Emit("  ldg t0, @%s", b.symbol.c_str());
            if (b.array_size != 0) return b.type.PointerTo();
            EmitLoadThroughT0(b.type);
            return b.type;
          default:
            return Err(e.line, "function name used as a value");
        }
      }
      case ExprKind::kUnary:
        return GenUnary(e);
      case ExprKind::kBinary:
        return GenBinary(e);
      case ExprKind::kAssign:
        return GenAssign(e);
      case ExprKind::kCall:
        return GenCall(e);
      case ExprKind::kIndex: {
        TC_ASSIGN_OR_RETURN(const Type elem, GenAddr(e));
        EmitLoadThroughT0(elem);
        return elem;
      }
      case ExprKind::kCast: {
        TC_ASSIGN_OR_RETURN(const Type from, GenExpr(*e.lhs));
        (void)from;
        EmitTruncate(e.type);
        return e.type;
      }
      case ExprKind::kSizeofType: {
        Emit("  movi t0, %u", e.type.ByteSize());
        return kLongType;
      }
      case ExprKind::kSizeofExpr: {
        TC_ASSIGN_OR_RETURN(const Type t, TypeOf(*e.lhs));
        Emit("  movi t0, %u", t.ByteSize());
        return kLongType;
      }
    }
    return Err(e.line, "unhandled expression");
  }

  /// Re-canonicalizes t0 after a narrowing cast.
  void EmitTruncate(const Type& to) {
    const unsigned bytes = to.ByteSize();
    if (bytes >= 8 || to.IsPointer() || bytes == 0) return;
    const unsigned shift = 64 - bytes * 8;
    Emit("  slli t0, t0, %u", shift);
    Emit("  %s t0, t0, %u", to.IsUnsigned() ? "srli" : "srai", shift);
  }

  StatusOr<Type> GenUnary(const Expr& e) {
    if (e.op == "-") {
      TC_ASSIGN_OR_RETURN(const Type t, GenExpr(*e.lhs));
      Emit("  neg t0, t0");
      return t;
    }
    if (e.op == "~") {
      TC_ASSIGN_OR_RETURN(const Type t, GenExpr(*e.lhs));
      Emit("  not t0, t0");
      return t;
    }
    if (e.op == "!") {
      TC_ASSIGN_OR_RETURN(const Type t, GenExpr(*e.lhs));
      (void)t;
      Emit("  seqz t0, t0");
      return kLongType;
    }
    if (e.op == "*") {
      TC_ASSIGN_OR_RETURN(const Type ptr, GenExpr(*e.lhs));
      if (!ptr.IsPointer()) return Err(e.line, "dereference of non-pointer");
      EmitLoadThroughT0(ptr.Pointee());
      return ptr.Pointee();
    }
    if (e.op == "&") {
      TC_ASSIGN_OR_RETURN(const Type t, GenAddr(*e.lhs));
      return t.PointerTo();
    }
    // Pre/post increment/decrement.
    const bool is_inc = e.op.substr(0, 2) == "++";
    const bool is_pre = e.op.size() >= 5 && e.op.substr(2) == "pre";
    TC_ASSIGN_OR_RETURN(const Type t, GenAddr(*e.lhs));
    const std::int64_t delta =
        (t.IsPointer() ? static_cast<std::int64_t>(t.Pointee().ByteSize())
                       : 1) *
        (is_inc ? 1 : -1);
    Emit("  mov t2, t0");       // t2 = address
    EmitLoadThroughT0(t);       // t0 = old value
    Emit("  addi t1, t0, %lld", static_cast<long long>(delta));  // t1 = new
    {
      // store t1 through t2.
      const char* op = nullptr;
      switch (t.ByteSize()) {
        case 1: op = "stb"; break;
        case 2: op = "sth"; break;
        case 4: op = "stw"; break;
        default: op = "std"; break;
      }
      Emit("  %s t1, [t2+0]", op);
    }
    if (is_pre) Emit("  mov t0, t1");
    return t;
  }

  StatusOr<Type> GenBinary(const Expr& e) {
    if (e.op == "&&" || e.op == "||") {
      const std::string skip = NewLabel(e.op == "&&" ? "andskip" : "orskip");
      const std::string end = NewLabel("logend");
      TC_ASSIGN_OR_RETURN(const Type lt, GenExpr(*e.lhs));
      (void)lt;
      if (e.op == "&&") {
        Emit("  beq t0, zr, %s", skip.c_str());
      } else {
        Emit("  bne t0, zr, %s", skip.c_str());
      }
      TC_ASSIGN_OR_RETURN(const Type rt, GenExpr(*e.rhs));
      (void)rt;
      Emit("  snez t0, t0");
      Emit("  jmp %s", end.c_str());
      Emit("%s:", skip.c_str());
      Emit("  movi t0, %d", e.op == "&&" ? 0 : 1);
      Emit("%s:", end.c_str());
      return kLongType;
    }

    TC_ASSIGN_OR_RETURN(const Type lt, GenExpr(*e.lhs));
    Type rt;
    if (IsLeaf(*e.rhs)) {
      TC_RETURN_IF_ERROR(GenLeafInto(*e.rhs, "t1", &rt));
    } else {
      Push("t0");
      TC_ASSIGN_OR_RETURN(rt, GenExpr(*e.rhs));
      Emit("  mov t1, t0");
      Pop("t0");
    }
    return EmitBinaryOp(e.line, e.op, lt, rt);
  }

  /// t0 = t0 OP t1, with pointer scaling and signedness rules.
  StatusOr<Type> EmitBinaryOp(int line, const std::string& op, Type lt,
                              Type rt) {
    const bool unsigned_op = lt.IsUnsigned() || rt.IsUnsigned();

    if (op == "+" || op == "-") {
      if (lt.IsPointer() && !rt.IsPointer()) {
        const unsigned scale = lt.Pointee().ByteSize();
        if (scale > 1) Emit("  muli t1, t1, %u", scale);
        Emit("  %s t0, t0, t1", op == "+" ? "add" : "sub");
        return lt;
      }
      if (lt.IsPointer() && rt.IsPointer()) {
        if (op == "+") return Err(line, "cannot add two pointers");
        Emit("  sub t0, t0, t1");
        const unsigned scale = lt.Pointee().ByteSize();
        if (scale > 1) {
          Emit("  movi t1, %u", scale);
          Emit("  div t0, t0, t1");
        }
        return kLongType;
      }
      Emit("  %s t0, t0, t1", op == "+" ? "add" : "sub");
      return lt;
    }
    if (op == "*") { Emit("  mul t0, t0, t1"); return lt; }
    if (op == "/") {
      Emit("  %s t0, t0, t1", unsigned_op ? "divu" : "div");
      return lt;
    }
    if (op == "%") {
      Emit("  %s t0, t0, t1", unsigned_op ? "remu" : "rem");
      return lt;
    }
    if (op == "&") { Emit("  and t0, t0, t1"); return lt; }
    if (op == "|") { Emit("  or t0, t0, t1"); return lt; }
    if (op == "^") { Emit("  xor t0, t0, t1"); return lt; }
    if (op == "<<") { Emit("  sll t0, t0, t1"); return lt; }
    if (op == ">>") {
      Emit("  %s t0, t0, t1", lt.IsUnsigned() ? "srl" : "sra");
      return lt;
    }
    if (op == "==") { Emit("  seq t0, t0, t1"); return kLongType; }
    if (op == "!=") { Emit("  sne t0, t0, t1"); return kLongType; }
    if (op == "<") {
      Emit("  %s t0, t0, t1", unsigned_op ? "sltu" : "slt");
      return kLongType;
    }
    if (op == ">") {
      Emit("  %s t0, t1, t0", unsigned_op ? "sltu" : "slt");
      return kLongType;
    }
    if (op == "<=") {
      Emit("  %s t0, t1, t0", unsigned_op ? "sltu" : "slt");
      Emit("  seqz t0, t0");
      return kLongType;
    }
    if (op == ">=") {
      Emit("  %s t0, t0, t1", unsigned_op ? "sltu" : "slt");
      Emit("  seqz t0, t0");
      return kLongType;
    }
    return Err(line, "unhandled operator '" + op + "'");
  }

  StatusOr<Type> GenAssign(const Expr& e) {
    // Address first, then value: [t0=addr pushed] value -> t1, store.
    TC_ASSIGN_OR_RETURN(const Type target, GenAddr(*e.lhs));
    if (e.op == "=") {
      if (IsLeaf(*e.rhs)) {
        Type ignored;
        TC_RETURN_IF_ERROR(GenLeafInto(*e.rhs, "t1", &ignored));
      } else {
        Push("t0");
        TC_ASSIGN_OR_RETURN(const Type ignored, GenExpr(*e.rhs));
        (void)ignored;
        Emit("  mov t1, t0");
        Pop("t0");
      }
      EmitStoreThroughT0(target);
      Emit("  mov t0, t1");  // assignment value
      return target;
    }
    // Compound: load old, apply, store.
    const std::string base_op = e.op.substr(0, e.op.size() - 1);
    Emit("  mov t2, t0");  // keep address
    EmitLoadThroughT0(target);
    Type rt;
    if (IsLeaf(*e.rhs)) {
      TC_RETURN_IF_ERROR(GenLeafInto(*e.rhs, "t1", &rt));
    } else {
      Push("t0");
      Push("t2");
      TC_ASSIGN_OR_RETURN(rt, GenExpr(*e.rhs));
      Emit("  mov t1, t0");
      Pop("t2");
      Pop("t0");
    }
    TC_ASSIGN_OR_RETURN(const Type result, EmitBinaryOp(e.line, base_op,
                                                        target, rt));
    (void)result;
    Emit("  mov t1, t0");
    Emit("  mov t0, t2");
    EmitStoreThroughT0(target);
    Emit("  mov t0, t1");
    return target;
  }

  StatusOr<Type> GenCall(const Expr& e) {
    TC_ASSIGN_OR_RETURN(const Binding callee, Resolve(e.name, e.line));
    if (callee.kind != Binding::kFunc && callee.kind != Binding::kExternFunc) {
      return Err(e.line, "'" + e.name + "' is not a function");
    }
    const auto param_count = func_params_.find(e.name);
    if (param_count != func_params_.end() &&
        param_count->second != e.args.size()) {
      return Err(e.line,
                 StrFormat("'%s' expects %zu arguments, got %zu",
                           e.name.c_str(), param_count->second,
                           e.args.size()));
    }
    for (const auto& arg : e.args) {
      TC_ASSIGN_OR_RETURN(const Type ignored, GenExpr(*arg));
      (void)ignored;
      Push("t0");
    }
    for (std::size_t i = e.args.size(); i-- > 0;) {
      Pop(StrFormat("a%zu", i).c_str());
    }
    if (callee.kind == Binding::kFunc) {
      Emit("  call %s", e.name.c_str());
    } else {
      Emit("  ldg t6, @%s", e.name.c_str());
      Emit("  jalr lr, t6, 0");
    }
    Emit("  mov t0, a0");
    return callee.type;
  }

  const Unit& unit_;
  std::string out_;
  std::map<std::string, Binding> globals_;
  std::map<std::string, std::size_t> func_params_;
  std::vector<std::map<std::string, Binding>> scopes_;
  std::map<const Stmt*, std::int32_t> slot_of_;
  std::vector<std::string> strings_;
  std::vector<std::string> break_labels_;
  std::vector<std::string> continue_labels_;
  std::uint64_t frame_size_ = 0;
  int label_counter_ = 0;
  const FuncDecl* current_fn_ = nullptr;
};

}  // namespace

StatusOr<std::string> GenerateAsm(const Unit& unit) {
  Codegen codegen(unit);
  return codegen.Run();
}

}  // namespace twochains::amcc
