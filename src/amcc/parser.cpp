#include "amcc/parser.hpp"

#include "amcc/lexer.hpp"
#include "common/strfmt.hpp"

namespace twochains::amcc {
namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string unit)
      : tokens_(std::move(tokens)), unit_(std::move(unit)) {}

  StatusOr<Unit> Run() {
    Unit unit;
    unit.name = unit_;
    while (!At(TokKind::kEof)) {
      TC_RETURN_IF_ERROR(TopLevel(unit));
    }
    return unit;
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool At(TokKind kind) const { return Peek().kind == kind; }
  bool AtPunct(std::string_view p) const { return Peek().IsPunct(p); }
  bool AtKeyword(std::string_view k) const { return Peek().IsKeyword(k); }

  bool EatPunct(std::string_view p) {
    if (AtPunct(p)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool EatKeyword(std::string_view k) {
    if (AtKeyword(k)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Err(const std::string& msg) const {
    return InvalidArgument(StrFormat("%s:%d: %s (near '%s')", unit_.c_str(),
                                     Peek().line, msg.c_str(),
                                     Peek().text.c_str()));
  }

  Status ExpectPunct(std::string_view p) {
    if (!EatPunct(p)) return Err(StrFormat("expected '%.*s'",
                                           static_cast<int>(p.size()),
                                           p.data()));
    return Status::Ok();
  }

  /// True if the current token can start a type.
  bool AtTypeStart() const {
    return AtKeyword("void") || AtKeyword("char") || AtKeyword("short") ||
           AtKeyword("int") || AtKeyword("long") || AtKeyword("unsigned") ||
           AtKeyword("signed") || AtKeyword("const");
  }

  /// Parses base-type keywords + '*'s. `is_const` is set if const appears.
  StatusOr<Type> ParseType(bool* is_const = nullptr) {
    bool saw_const = false;
    bool saw_unsigned = false;
    bool saw_signed = false;
    BaseType base = BaseType::kI32;
    bool have_base = false;

    while (true) {
      if (EatKeyword("const")) {
        saw_const = true;
        continue;
      }
      if (EatKeyword("unsigned")) {
        saw_unsigned = true;
        continue;
      }
      if (EatKeyword("signed")) {
        saw_signed = true;
        continue;
      }
      if (EatKeyword("void")) { base = BaseType::kVoid; have_base = true; continue; }
      if (EatKeyword("char")) { base = BaseType::kI8; have_base = true; continue; }
      if (EatKeyword("short")) { base = BaseType::kI16; have_base = true; continue; }
      if (EatKeyword("int")) {
        if (!have_base) { base = BaseType::kI32; have_base = true; }
        // "long int", "short int": keep the earlier width
        continue;
      }
      if (EatKeyword("long")) {
        base = BaseType::kI64;  // long long == long
        have_base = true;
        continue;
      }
      break;
    }
    if (!have_base && !saw_unsigned && !saw_signed) {
      return Err("expected a type");
    }
    if (saw_unsigned) {
      switch (base) {
        case BaseType::kI8: base = BaseType::kU8; break;
        case BaseType::kI16: base = BaseType::kU16; break;
        case BaseType::kI32: base = BaseType::kU32; break;
        case BaseType::kI64: base = BaseType::kU64; break;
        case BaseType::kVoid: return Err("'unsigned void' is not a type");
        default: break;
      }
    }
    Type type;
    type.base = base;
    while (EatPunct("*")) {
      if (type.pointer_depth == 255) return Err("pointer depth overflow");
      ++type.pointer_depth;
      // 'const' between stars is accepted and folded into is_const.
      if (EatKeyword("const")) saw_const = true;
    }
    if (is_const != nullptr) *is_const = saw_const;
    return type;
  }

  Status TopLevel(Unit& unit) {
    bool is_extern = false;
    bool is_static = false;
    while (true) {
      if (EatKeyword("extern")) { is_extern = true; continue; }
      if (EatKeyword("static")) { is_static = true; continue; }
      break;
    }
    bool is_const = false;
    TC_ASSIGN_OR_RETURN(const Type type, ParseType(&is_const));
    if (!At(TokKind::kIdent)) return Err("expected a name");
    const int line = Peek().line;
    const std::string name = Advance().text;

    if (AtPunct("(")) {
      return ParseFunction(unit, type, name, is_extern, is_static, line);
    }
    return ParseGlobal(unit, type, name, is_const, is_extern, is_static, line);
  }

  Status ParseFunction(Unit& unit, Type return_type, std::string name,
                       bool is_extern, bool is_static, int line) {
    TC_RETURN_IF_ERROR(ExpectPunct("("));
    FuncDecl fn;
    fn.return_type = return_type;
    fn.name = std::move(name);
    fn.is_static = is_static;
    fn.line = line;
    if (!EatPunct(")")) {
      if (AtKeyword("void") && Peek(1).IsPunct(")")) {
        Advance();  // f(void)
        TC_RETURN_IF_ERROR(ExpectPunct(")"));
      } else {
        while (true) {
          TC_ASSIGN_OR_RETURN(const Type ptype, ParseType());
          Param param;
          param.type = ptype;
          if (At(TokKind::kIdent)) param.name = Advance().text;
          if (param.type.IsVoid()) return Err("void parameter");
          fn.params.push_back(std::move(param));
          if (fn.params.size() > 8) {
            return Err("AMC functions take at most 8 parameters");
          }
          if (EatPunct(")")) break;
          TC_RETURN_IF_ERROR(ExpectPunct(","));
        }
      }
    }
    if (EatPunct(";")) {
      fn.is_extern = true;
      unit.functions.push_back(std::move(fn));
      return Status::Ok();
    }
    if (is_extern) {
      return Err("extern function with a body");
    }
    TC_RETURN_IF_ERROR(ExpectPunct("{"));
    TC_ASSIGN_OR_RETURN(fn.body, ParseBlockBody());
    unit.functions.push_back(std::move(fn));
    return Status::Ok();
  }

  Status ParseGlobal(Unit& unit, Type type, std::string name, bool is_const,
                     bool is_extern, bool is_static, int line) {
    GlobalDecl g;
    g.type = type;
    g.name = std::move(name);
    g.is_const = is_const;
    g.is_extern = is_extern;
    g.is_static = is_static;
    g.line = line;
    if (EatPunct("[")) {
      if (!At(TokKind::kIntLit)) return Err("array size must be a literal");
      g.array_size = Advance().int_value;
      if (g.array_size == 0) return Err("zero-length array");
      TC_RETURN_IF_ERROR(ExpectPunct("]"));
    }
    if (EatPunct("=")) {
      if (is_extern) return Err("extern variable with initializer");
      if (At(TokKind::kStringLit)) {
        g.init_string = Advance().str_value;
      } else if (EatPunct("{")) {
        while (!EatPunct("}")) {
          TC_ASSIGN_OR_RETURN(const std::uint64_t v, ConstIntExpr());
          g.init_list.push_back(v);
          if (!AtPunct("}")) TC_RETURN_IF_ERROR(ExpectPunct(","));
        }
      } else {
        TC_ASSIGN_OR_RETURN(const std::uint64_t v, ConstIntExpr());
        g.init_int = v;
      }
    }
    TC_RETURN_IF_ERROR(ExpectPunct(";"));
    unit.globals.push_back(std::move(g));
    return Status::Ok();
  }

  /// Constant integer expression (literals, unary minus/complement, and
  /// the four basic binary ops on literals — enough for initializers).
  StatusOr<std::uint64_t> ConstIntExpr() {
    TC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    return EvalConst(*e);
  }

  StatusOr<std::uint64_t> EvalConst(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return e.int_value;
      case ExprKind::kUnary: {
        TC_ASSIGN_OR_RETURN(const std::uint64_t v, EvalConst(*e.lhs));
        if (e.op == "-") return static_cast<std::uint64_t>(-static_cast<std::int64_t>(v));
        if (e.op == "~") return ~v;
        if (e.op == "!") return v == 0 ? 1u : 0u;
        return Err("non-constant unary in initializer");
      }
      case ExprKind::kBinary: {
        TC_ASSIGN_OR_RETURN(const std::uint64_t a, EvalConst(*e.lhs));
        TC_ASSIGN_OR_RETURN(const std::uint64_t b, EvalConst(*e.rhs));
        if (e.op == "+") return a + b;
        if (e.op == "-") return a - b;
        if (e.op == "*") return a * b;
        if (e.op == "/") {
          if (b == 0) return Err("division by zero in constant");
          return a / b;
        }
        if (e.op == "<<") return a << (b & 63);
        if (e.op == ">>") return a >> (b & 63);
        if (e.op == "|") return a | b;
        if (e.op == "&") return a & b;
        if (e.op == "^") return a ^ b;
        return Err("non-constant binary in initializer");
      }
      case ExprKind::kSizeofType:
        return e.type.ByteSize();
      default:
        return Err("initializer is not a constant expression");
    }
  }

  // ------------------------------------------------------- statements

  StatusOr<std::vector<StmtPtr>> ParseBlockBody() {
    std::vector<StmtPtr> body;
    while (!EatPunct("}")) {
      if (At(TokKind::kEof)) return Err("unterminated block");
      TC_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStmt());
      body.push_back(std::move(stmt));
    }
    return body;
  }

  StatusOr<StmtPtr> ParseStmt() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = Peek().line;

    if (EatPunct("{")) {
      stmt->kind = StmtKind::kBlock;
      TC_ASSIGN_OR_RETURN(stmt->body, ParseBlockBody());
      return stmt;
    }
    if (EatKeyword("if")) {
      stmt->kind = StmtKind::kIf;
      TC_RETURN_IF_ERROR(ExpectPunct("("));
      TC_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      TC_RETURN_IF_ERROR(ExpectPunct(")"));
      TC_ASSIGN_OR_RETURN(StmtPtr then_stmt, ParseStmt());
      stmt->body.push_back(std::move(then_stmt));
      if (EatKeyword("else")) {
        TC_ASSIGN_OR_RETURN(StmtPtr else_stmt, ParseStmt());
        stmt->else_body.push_back(std::move(else_stmt));
      }
      return stmt;
    }
    if (EatKeyword("while")) {
      stmt->kind = StmtKind::kWhile;
      TC_RETURN_IF_ERROR(ExpectPunct("("));
      TC_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      TC_RETURN_IF_ERROR(ExpectPunct(")"));
      TC_ASSIGN_OR_RETURN(StmtPtr body_stmt, ParseStmt());
      stmt->body.push_back(std::move(body_stmt));
      return stmt;
    }
    if (EatKeyword("for")) {
      stmt->kind = StmtKind::kFor;
      TC_RETURN_IF_ERROR(ExpectPunct("("));
      if (!EatPunct(";")) {
        TC_ASSIGN_OR_RETURN(stmt->for_init, ParseSimpleStmt());
        TC_RETURN_IF_ERROR(ExpectPunct(";"));
      }
      if (!AtPunct(";")) {
        TC_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      }
      TC_RETURN_IF_ERROR(ExpectPunct(";"));
      if (!AtPunct(")")) {
        TC_ASSIGN_OR_RETURN(stmt->for_step, ParseExpr());
      }
      TC_RETURN_IF_ERROR(ExpectPunct(")"));
      TC_ASSIGN_OR_RETURN(StmtPtr body_stmt, ParseStmt());
      stmt->body.push_back(std::move(body_stmt));
      return stmt;
    }
    if (EatKeyword("return")) {
      stmt->kind = StmtKind::kReturn;
      if (!AtPunct(";")) {
        TC_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      }
      TC_RETURN_IF_ERROR(ExpectPunct(";"));
      return stmt;
    }
    if (EatKeyword("break")) {
      stmt->kind = StmtKind::kBreak;
      TC_RETURN_IF_ERROR(ExpectPunct(";"));
      return stmt;
    }
    if (EatKeyword("continue")) {
      stmt->kind = StmtKind::kContinue;
      TC_RETURN_IF_ERROR(ExpectPunct(";"));
      return stmt;
    }
    TC_ASSIGN_OR_RETURN(stmt, ParseSimpleStmt());
    TC_RETURN_IF_ERROR(ExpectPunct(";"));
    return stmt;
  }

  /// Declaration or expression statement (no trailing ';').
  StatusOr<StmtPtr> ParseSimpleStmt() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = Peek().line;
    if (AtTypeStart()) {
      stmt->kind = StmtKind::kDecl;
      bool is_const = false;
      TC_ASSIGN_OR_RETURN(stmt->decl_type, ParseType(&is_const));
      if (stmt->decl_type.IsVoid()) return Err("void variable");
      if (!At(TokKind::kIdent)) return Err("expected variable name");
      stmt->decl_name = Advance().text;
      if (EatPunct("[")) {
        if (!At(TokKind::kIntLit)) return Err("array size must be a literal");
        stmt->array_size = Advance().int_value;
        if (stmt->array_size == 0) return Err("zero-length array");
        TC_RETURN_IF_ERROR(ExpectPunct("]"));
      }
      if (EatPunct("=")) {
        TC_ASSIGN_OR_RETURN(stmt->init, ParseExpr());
      }
      return stmt;
    }
    stmt->kind = StmtKind::kExpr;
    TC_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
    return stmt;
  }

  // ------------------------------------------------------ expressions

  StatusOr<ExprPtr> ParseExpr() { return ParseAssign(); }

  StatusOr<ExprPtr> ParseAssign() {
    TC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseBinary(0));
    static constexpr std::string_view kAssignOps[] = {
        "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
    for (const auto& op : kAssignOps) {
      if (AtPunct(op)) {
        const int line = Peek().line;
        Advance();
        TC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAssign());
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kAssign;
        e->op = std::string(op);
        e->line = line;
        e->lhs = std::move(lhs);
        e->rhs = std::move(rhs);
        return e;
      }
    }
    return lhs;
  }

  struct OpLevel {
    std::string_view ops[4];
    int count;
  };

  /// Binary operators by ascending precedence.
  static constexpr OpLevel kLevels[] = {
      {{"||"}, 1},
      {{"&&"}, 1},
      {{"|"}, 1},
      {{"^"}, 1},
      {{"&"}, 1},
      {{"==", "!="}, 2},
      {{"<", ">", "<=", ">="}, 4},
      {{"<<", ">>"}, 2},
      {{"+", "-"}, 2},
      {{"*", "/", "%"}, 3},
  };
  static constexpr int kNumLevels = 10;

  StatusOr<ExprPtr> ParseBinary(int level) {
    if (level >= kNumLevels) return ParseUnary();
    TC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseBinary(level + 1));
    while (true) {
      const OpLevel& lv = kLevels[level];
      std::string_view matched;
      for (int i = 0; i < lv.count; ++i) {
        if (AtPunct(lv.ops[i])) {
          matched = lv.ops[i];
          break;
        }
      }
      if (matched.empty()) return lhs;
      const int line = Peek().line;
      Advance();
      TC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseBinary(level + 1));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBinary;
      e->op = std::string(matched);
      e->line = line;
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
  }

  StatusOr<ExprPtr> ParseUnary() {
    const int line = Peek().line;
    for (std::string_view op : {"-", "~", "!", "*", "&"}) {
      if (AtPunct(op)) {
        Advance();
        TC_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kUnary;
        e->op = std::string(op);
        e->line = line;
        e->lhs = std::move(operand);
        return e;
      }
    }
    if (AtPunct("++") || AtPunct("--")) {
      const std::string op = Advance().text;
      TC_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->op = op + "pre";
      e->line = line;
      e->lhs = std::move(operand);
      return e;
    }
    if (AtKeyword("sizeof")) {
      Advance();
      TC_RETURN_IF_ERROR(ExpectPunct("("));
      auto e = std::make_unique<Expr>();
      e->line = line;
      if (AtTypeStart()) {
        e->kind = ExprKind::kSizeofType;
        TC_ASSIGN_OR_RETURN(e->type, ParseType());
      } else {
        e->kind = ExprKind::kSizeofExpr;
        TC_ASSIGN_OR_RETURN(e->lhs, ParseExpr());
      }
      TC_RETURN_IF_ERROR(ExpectPunct(")"));
      return e;
    }
    // Cast: '(' type ')' unary.
    if (AtPunct("(") && (Peek(1).kind == TokKind::kKeyword &&
                         (Peek(1).IsKeyword("void") || Peek(1).IsKeyword("char") ||
                          Peek(1).IsKeyword("short") || Peek(1).IsKeyword("int") ||
                          Peek(1).IsKeyword("long") || Peek(1).IsKeyword("unsigned") ||
                          Peek(1).IsKeyword("signed") || Peek(1).IsKeyword("const")))) {
      Advance();  // '('
      TC_ASSIGN_OR_RETURN(const Type type, ParseType());
      TC_RETURN_IF_ERROR(ExpectPunct(")"));
      TC_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kCast;
      e->type = type;
      e->line = line;
      e->lhs = std::move(operand);
      return e;
    }
    return ParsePostfix();
  }

  StatusOr<ExprPtr> ParsePostfix() {
    TC_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
    while (true) {
      const int line = Peek().line;
      if (EatPunct("(")) {
        if (e->kind != ExprKind::kIdent) {
          return Err("only named functions can be called");
        }
        auto call = std::make_unique<Expr>();
        call->kind = ExprKind::kCall;
        call->name = e->name;
        call->line = line;
        if (!EatPunct(")")) {
          while (true) {
            TC_ASSIGN_OR_RETURN(ExprPtr arg, ParseAssign());
            call->args.push_back(std::move(arg));
            if (call->args.size() > 8) return Err("too many call arguments");
            if (EatPunct(")")) break;
            TC_RETURN_IF_ERROR(ExpectPunct(","));
          }
        }
        e = std::move(call);
        continue;
      }
      if (EatPunct("[")) {
        auto idx = std::make_unique<Expr>();
        idx->kind = ExprKind::kIndex;
        idx->line = line;
        idx->lhs = std::move(e);
        TC_ASSIGN_OR_RETURN(idx->rhs, ParseExpr());
        TC_RETURN_IF_ERROR(ExpectPunct("]"));
        e = std::move(idx);
        continue;
      }
      if (AtPunct("++") || AtPunct("--")) {
        const std::string op = Advance().text;
        auto post = std::make_unique<Expr>();
        post->kind = ExprKind::kUnary;
        post->op = op + "post";
        post->line = line;
        post->lhs = std::move(e);
        e = std::move(post);
        continue;
      }
      return e;
    }
  }

  StatusOr<ExprPtr> ParsePrimary() {
    auto e = std::make_unique<Expr>();
    e->line = Peek().line;
    if (At(TokKind::kIntLit) || At(TokKind::kCharLit)) {
      e->kind = ExprKind::kIntLit;
      e->int_value = Advance().int_value;
      return e;
    }
    if (At(TokKind::kStringLit)) {
      e->kind = ExprKind::kStringLit;
      e->str_value = Advance().str_value;
      return e;
    }
    if (At(TokKind::kIdent)) {
      e->kind = ExprKind::kIdent;
      e->name = Advance().text;
      return e;
    }
    if (EatPunct("(")) {
      TC_ASSIGN_OR_RETURN(e, ParseExpr());
      TC_RETURN_IF_ERROR(ExpectPunct(")"));
      return e;
    }
    return Err("expected an expression");
  }

  std::vector<Token> tokens_;
  std::string unit_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<Unit> Parse(std::string_view source, const std::string& unit_name) {
  TC_ASSIGN_OR_RETURN(auto tokens, Lex(source, unit_name));
  Parser parser(std::move(tokens), unit_name);
  return parser.Run();
}

}  // namespace twochains::amcc
