// amcc driver: AMC source -> assembly -> ObjectCode.
//
// The equivalent of the paper's "build toolchain [that] processes C source
// files" (§I): one call compiles an active-message source unit into a
// relocatable object ready for the package builder, which links it twice —
// once unmodified into the Local Function library, once GOT-rewritten into
// the injectable jam image.
#pragma once

#include <string>
#include <string_view>

#include "common/status.hpp"
#include "jamvm/program.hpp"

namespace twochains::amcc {

struct CompileResult {
  vm::ObjectCode object;
  std::string asm_text;  ///< generated assembly (diagnostics / tests)
};

/// Compiles one AMC translation unit.
StatusOr<CompileResult> Compile(std::string_view source,
                                const std::string& unit_name);

}  // namespace twochains::amcc
