#include "amcc/lexer.hpp"

#include <array>
#include <cctype>

#include "common/strfmt.hpp"

namespace twochains::amcc {
namespace {

constexpr std::array<std::string_view, 17> kKeywords = {
    "void", "char", "short", "int", "long", "unsigned", "signed", "const",
    "static", "extern", "if", "else", "while", "for", "return", "break",
    "continue",
};

bool IsKeyword(std::string_view s) {
  for (const auto& k : kKeywords) {
    if (k == s) return true;
  }
  return s == "sizeof";
}

// Longest-match punctuation, ordered by length.
constexpr std::array<std::string_view, 35> kPuncts = {
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=", "?",
    ":",
};

}  // namespace

StatusOr<std::vector<Token>> Lex(std::string_view source,
                                 const std::string& unit_name) {
  std::vector<Token> tokens;
  int line = 1;
  std::size_t i = 0;
  const auto n = source.size();

  auto err = [&](const std::string& msg) {
    return InvalidArgument(
        StrFormat("%s:%d: %s", unit_name.c_str(), line, msg.c_str()));
  };

  auto unescape = [&](char c) -> StatusOr<char> {
    switch (c) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case '\\': return '\\';
      case '\'': return '\'';
      case '"': return '"';
      default: return err(StrFormat("bad escape '\\%c'", c));
    }
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) return err("unterminated block comment");
      i += 2;
      continue;
    }
    // Identifier / keyword.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        ++i;
      }
      Token t;
      t.text = std::string(source.substr(start, i - start));
      t.kind = IsKeyword(t.text) ? TokKind::kKeyword : TokKind::kIdent;
      t.line = line;
      tokens.push_back(std::move(t));
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::uint64_t value = 0;
      if (c == '0' && i + 1 < n && (source[i + 1] == 'x' || source[i + 1] == 'X')) {
        i += 2;
        if (i >= n || !std::isxdigit(static_cast<unsigned char>(source[i]))) {
          return err("bad hex literal");
        }
        while (i < n && std::isxdigit(static_cast<unsigned char>(source[i]))) {
          const char d = source[i];
          unsigned digit = d <= '9'   ? static_cast<unsigned>(d - '0')
                           : d <= 'F' ? static_cast<unsigned>(d - 'A' + 10)
                                      : static_cast<unsigned>(d - 'a' + 10);
          value = value * 16 + digit;
          ++i;
        }
      } else {
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
          value = value * 10 + static_cast<unsigned>(source[i] - '0');
          ++i;
        }
      }
      // Optional integer suffixes (u, l, ul, lu...), accepted and ignored.
      while (i < n && (source[i] == 'u' || source[i] == 'U' ||
                       source[i] == 'l' || source[i] == 'L')) {
        ++i;
      }
      Token t;
      t.kind = TokKind::kIntLit;
      t.int_value = value;
      t.line = line;
      tokens.push_back(std::move(t));
      continue;
    }
    // Char literal.
    if (c == '\'') {
      ++i;
      if (i >= n) return err("unterminated char literal");
      char value = source[i];
      if (value == '\\') {
        ++i;
        if (i >= n) return err("unterminated char literal");
        TC_ASSIGN_OR_RETURN(value, unescape(source[i]));
      }
      ++i;
      if (i >= n || source[i] != '\'') return err("unterminated char literal");
      ++i;
      Token t;
      t.kind = TokKind::kCharLit;
      t.int_value = static_cast<std::uint64_t>(
          static_cast<std::uint8_t>(value));
      t.line = line;
      tokens.push_back(std::move(t));
      continue;
    }
    // String literal.
    if (c == '"') {
      ++i;
      std::string value;
      while (i < n && source[i] != '"') {
        char ch = source[i];
        if (ch == '\n') return err("newline in string literal");
        if (ch == '\\') {
          ++i;
          if (i >= n) return err("unterminated string literal");
          TC_ASSIGN_OR_RETURN(ch, unescape(source[i]));
        }
        value += ch;
        ++i;
      }
      if (i >= n) return err("unterminated string literal");
      ++i;
      Token t;
      t.kind = TokKind::kStringLit;
      t.str_value = std::move(value);
      t.line = line;
      tokens.push_back(std::move(t));
      continue;
    }
    // Single-char structural punctuation.
    if (c == '(' || c == ')' || c == '{' || c == '}' || c == '[' ||
        c == ']' || c == ';' || c == ',') {
      Token t;
      t.kind = TokKind::kPunct;
      t.text = std::string(1, c);
      t.line = line;
      tokens.push_back(std::move(t));
      ++i;
      continue;
    }
    // Operators, longest match first.
    bool matched = false;
    for (const auto& p : kPuncts) {
      if (source.substr(i, p.size()) == p) {
        Token t;
        t.kind = TokKind::kPunct;
        t.text = std::string(p);
        t.line = line;
        tokens.push_back(std::move(t));
        i += p.size();
        matched = true;
        break;
      }
    }
    if (matched) continue;
    return err(StrFormat("unexpected character '%c'", c));
  }

  Token eof;
  eof.kind = TokKind::kEof;
  eof.line = line;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace twochains::amcc
