// Recursive-descent parser for AMC.
#pragma once

#include <string>
#include <string_view>

#include "amcc/ast.hpp"
#include "common/status.hpp"

namespace twochains::amcc {

/// Parses a full translation unit.
StatusOr<Unit> Parse(std::string_view source, const std::string& unit_name);

}  // namespace twochains::amcc
