// Lexer for AMC source.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace twochains::amcc {

enum class TokKind : std::uint8_t {
  kEof,
  kIdent,
  kIntLit,
  kCharLit,
  kStringLit,
  kKeyword,
  kPunct,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;          ///< identifier, keyword, or punctuation spelling
  std::uint64_t int_value = 0;  ///< for kIntLit / kCharLit
  std::string str_value;     ///< for kStringLit (unescaped)
  int line = 0;

  bool Is(TokKind k, std::string_view t) const {
    return kind == k && text == t;
  }
  bool IsPunct(std::string_view t) const { return Is(TokKind::kPunct, t); }
  bool IsKeyword(std::string_view t) const { return Is(TokKind::kKeyword, t); }
};

/// Tokenizes @p source. Handles // and /* */ comments, decimal/hex/char
/// literals, string literals with escapes, and multi-char operators.
StatusOr<std::vector<Token>> Lex(std::string_view source,
                                 const std::string& unit_name);

}  // namespace twochains::amcc
