// Type model for AMC, the C subset in which active messages are written.
//
// AMC covers what AM handlers in the paper's workloads need: the integer
// types, pointers (any depth), arrays, and functions over them. There are
// no structs or floating point — jam handlers in the evaluation are integer
// and pointer code. All arithmetic happens in 64-bit registers; the
// declared type governs load/store width, sign extension, pointer-arithmetic
// scaling, and signed vs unsigned operator selection.
#pragma once

#include <cstdint>
#include <string>

namespace twochains::amcc {

enum class BaseType : std::uint8_t {
  kVoid,
  kI8, kI16, kI32, kI64,
  kU8, kU16, kU32, kU64,
};

struct Type {
  BaseType base = BaseType::kI64;
  std::uint8_t pointer_depth = 0;  ///< 0 = scalar, 1 = T*, 2 = T**, ...

  bool IsPointer() const noexcept { return pointer_depth > 0; }
  bool IsVoid() const noexcept {
    return base == BaseType::kVoid && pointer_depth == 0;
  }
  bool IsUnsigned() const noexcept {
    if (IsPointer()) return true;  // pointers compare unsigned
    switch (base) {
      case BaseType::kU8: case BaseType::kU16:
      case BaseType::kU32: case BaseType::kU64:
        return true;
      default:
        return false;
    }
  }

  /// Size of a value of this type (pointers are 8 bytes).
  unsigned ByteSize() const noexcept {
    if (IsPointer()) return 8;
    switch (base) {
      case BaseType::kVoid: return 0;
      case BaseType::kI8: case BaseType::kU8: return 1;
      case BaseType::kI16: case BaseType::kU16: return 2;
      case BaseType::kI32: case BaseType::kU32: return 4;
      case BaseType::kI64: case BaseType::kU64: return 8;
    }
    return 8;
  }

  /// The type obtained by dereferencing (caller checks IsPointer()).
  Type Pointee() const noexcept {
    Type t = *this;
    if (t.pointer_depth > 0) --t.pointer_depth;
    return t;
  }
  Type PointerTo() const noexcept {
    Type t = *this;
    ++t.pointer_depth;
    return t;
  }

  std::string ToString() const;

  friend bool operator==(const Type&, const Type&) = default;
};

inline constexpr Type kVoidType{BaseType::kVoid, 0};
inline constexpr Type kLongType{BaseType::kI64, 0};
inline constexpr Type kCharPtrType{BaseType::kI8, 1};

}  // namespace twochains::amcc
