// AST for AMC translation units.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "amcc/types.hpp"

namespace twochains::amcc {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : std::uint8_t {
  kIntLit,
  kStringLit,
  kIdent,
  kUnary,    ///< op in {-, ~, !, *, &, ++pre, --pre, ++post, --post}
  kBinary,   ///< arithmetic / comparison / logical
  kAssign,   ///< op in {=, +=, -=, *=, /=, %=, &=, |=, ^=, <<=, >>=}
  kCall,
  kIndex,    ///< a[i]
  kCast,
  kSizeofType,
  kSizeofExpr,
};

struct Expr {
  ExprKind kind;
  int line = 0;

  std::uint64_t int_value = 0;   // kIntLit
  std::string str_value;         // kStringLit
  std::string name;              // kIdent / kCall callee
  std::string op;                // kUnary / kBinary / kAssign
  ExprPtr lhs;                   // operand / callee-agnostic left side
  ExprPtr rhs;
  std::vector<ExprPtr> args;     // kCall
  Type type;                     // kCast target / kSizeofType operand
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : std::uint8_t {
  kExpr,
  kDecl,
  kIf,
  kWhile,
  kFor,
  kReturn,
  kBreak,
  kContinue,
  kBlock,
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  ExprPtr expr;  // kExpr payload / kReturn value / kIf-kWhile-kFor condition

  // kDecl
  Type decl_type;
  std::string decl_name;
  std::uint64_t array_size = 0;  ///< 0 = scalar
  ExprPtr init;

  // kFor
  StmtPtr for_init;
  ExprPtr for_step;

  // kIf / kWhile / kFor / kBlock bodies
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;  // kIf only
};

struct Param {
  Type type;
  std::string name;
};

struct FuncDecl {
  Type return_type;
  std::string name;
  std::vector<Param> params;
  bool is_extern = false;  ///< declaration only
  bool is_static = false;  ///< not exported
  std::vector<StmtPtr> body;
  int line = 0;
};

struct GlobalDecl {
  Type type;
  std::string name;
  std::uint64_t array_size = 0;
  bool is_const = false;   ///< placed in .rodata
  bool is_extern = false;  ///< declaration only
  bool is_static = false;
  std::optional<std::uint64_t> init_int;
  std::optional<std::string> init_string;   ///< char arrays / char*
  std::vector<std::uint64_t> init_list;     ///< array initializer
  int line = 0;
};

struct Unit {
  std::string name;
  std::vector<FuncDecl> functions;
  std::vector<GlobalDecl> globals;
};

}  // namespace twochains::amcc
