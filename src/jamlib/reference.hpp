// Host-native reference twins of every jamlib jam. The differential suite
// (tests/jamlib_test.cpp) drives a compiled jam and its twin with the same
// seeded op stream and requires identical observable results — the
// toolchain-validation contract: amcc codegen, the linker/loader, and the
// interpreter must together compute exactly what this straightforward C++
// computes.
//
// The twins replicate *semantics* (probe order, tombstone reuse, masking,
// return values), not the VM's execution model; they run as ordinary host
// code with no simulated memory behind them.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "jamlib/jamlib.hpp"

namespace twochains::jamlib::ref {

/// Twin of jam_kv_put / jam_kv_get / jam_kv_del: open-addressed map with
/// linear probing and tombstone reuse over kKvSlots slots.
class KvTable {
 public:
  KvTable();

  /// Returns the slot written, or kKvFull. @p payload (possibly empty)
  /// lands in the slot's blob cell, truncated to kKvBlobBytes.
  std::int64_t Put(std::int64_t key, std::int64_t value,
                   std::span<const std::uint8_t> payload = {});
  /// Returns the stored value, or kKvMiss.
  std::int64_t Get(std::int64_t key) const;
  /// Returns 1 if the key was erased, 0 if absent.
  std::int64_t Del(std::int64_t key);

  std::int64_t count() const noexcept { return count_; }
  /// Raw slot views (index parity checks against the jam's resident state).
  std::int64_t key_at(std::uint64_t slot) const { return keys_[slot]; }
  std::int64_t value_at(std::uint64_t slot) const { return vals_[slot]; }
  std::span<const std::uint8_t> blob_at(std::uint64_t slot) const {
    return {blob_.data() + slot * kKvBlobBytes, kKvBlobBytes};
  }

 private:
  /// Probe for @p key: the matching slot, or the insert target (first
  /// tombstone seen, else the terminating empty slot), or kKvFull.
  std::int64_t FindSlot(std::int64_t key, bool* found) const;

  std::vector<std::int64_t> keys_;
  std::vector<std::int64_t> vals_;
  std::vector<std::uint8_t> blob_;
  std::int64_t count_ = 0;
};

/// Twin of jam_ctr_add / jam_cas over kCtrCells cells.
class Counters {
 public:
  Counters() : cells_(kCtrCells, 0) {}

  /// Fetch-and-add; returns the new value. Index masked into range.
  std::int64_t Add(std::int64_t cell, std::int64_t delta) {
    std::int64_t& c = cells_[static_cast<std::uint64_t>(cell) % kCtrCells];
    c += delta;
    return c;
  }
  /// Compare-and-swap; returns the old value.
  std::int64_t Cas(std::int64_t cell, std::int64_t expect,
                   std::int64_t desired) {
    std::int64_t& c = cells_[static_cast<std::uint64_t>(cell) % kCtrCells];
    const std::int64_t old = c;
    if (old == expect) c = desired;
    return old;
  }
  std::int64_t at(std::uint64_t cell) const { return cells_[cell]; }

 private:
  std::vector<std::int64_t> cells_;
};

/// Twin of jam_topk: the kTopK largest pushed values, descending.
class TopK {
 public:
  /// Returns the smallest kept value after the push (the k-th largest
  /// seen once the set is full).
  std::int64_t Push(std::int64_t v);
  std::span<const std::int64_t> kept() const noexcept {
    return {vals_.data(), len_};
  }

 private:
  std::array<std::int64_t, kTopK> vals_{};
  std::size_t len_ = 0;
};

/// Twin of jam_scatter / jam_gather over kSgCells cells.
class ScatterGather {
 public:
  ScatterGather() : cells_(kSgCells, 0) {}

  /// @p pairs = (index, value) pairs; returns the pair count.
  std::int64_t Scatter(std::span<const std::int64_t> pairs);
  /// Sum of cells over @p indices (masked), the gather-reduce result.
  std::int64_t Gather(std::span<const std::int64_t> indices) const;
  std::int64_t at(std::uint64_t cell) const { return cells_[cell]; }

 private:
  std::vector<std::int64_t> cells_;
};

/// Twin of jam_agg_push / jam_agg_take.
class Aggregator {
 public:
  std::int64_t Push(std::int64_t v) {
    acc_ += v;
    ++seen_;
    return acc_;
  }
  std::int64_t Take() {
    const std::int64_t total = acc_;
    acc_ = 0;
    seen_ = 0;
    return total;
  }
  std::int64_t seen() const noexcept { return seen_; }

 private:
  std::int64_t acc_ = 0;
  std::int64_t seen_ = 0;
};

}  // namespace twochains::jamlib::ref
