#include "jamlib/kv_service.hpp"

namespace twochains::jamlib {

const char* KvJamFor(KvOp op) noexcept {
  switch (op) {
    case KvOp::kGet:
      return "kv_get";
    case KvOp::kPut:
      return "kv_put";
    case KvOp::kDel:
      return "kv_del";
  }
  return "kv_get";
}

std::vector<std::uint64_t> KvArgsFor(const KvRequest& request) {
  if (request.op == KvOp::kPut) {
    return {request.key, static_cast<std::uint64_t>(request.value)};
  }
  return {request.key};
}

}  // namespace twochains::jamlib
