#include "jamlib/reference.hpp"

namespace twochains::jamlib::ref {

KvTable::KvTable()
    : keys_(kKvSlots, kKvEmpty),
      vals_(kKvSlots, 0),
      blob_(kKvSlots * kKvBlobBytes, 0) {}

std::int64_t KvTable::FindSlot(std::int64_t key, bool* found) const {
  *found = false;
  std::int64_t target = -1;
  const std::uint64_t home = KvHomeSlot(key);
  for (std::uint64_t i = 0; i < kKvSlots; ++i) {
    const std::uint64_t s = (home + i) % kKvSlots;
    const std::int64_t k = keys_[s];
    if (k == key) {
      *found = true;
      return static_cast<std::int64_t>(s);
    }
    if (k == kKvTombstone && target < 0) {
      target = static_cast<std::int64_t>(s);
    }
    if (k == kKvEmpty) {
      if (target < 0) target = static_cast<std::int64_t>(s);
      break;
    }
  }
  return target;
}

std::int64_t KvTable::Put(std::int64_t key, std::int64_t value,
                          std::span<const std::uint8_t> payload) {
  bool found = false;
  const std::int64_t target = FindSlot(key, &found);
  if (target < 0) return kKvFull;
  const auto slot = static_cast<std::uint64_t>(target);
  if (!found) {
    keys_[slot] = key;
    ++count_;
  }
  vals_[slot] = value;
  if (!payload.empty()) {
    const std::size_t n = std::min<std::size_t>(payload.size(), kKvBlobBytes);
    std::memcpy(blob_.data() + slot * kKvBlobBytes, payload.data(), n);
  }
  return target;
}

std::int64_t KvTable::Get(std::int64_t key) const {
  bool found = false;
  const std::int64_t slot = FindSlot(key, &found);
  if (!found) return kKvMiss;
  return vals_[static_cast<std::uint64_t>(slot)];
}

std::int64_t KvTable::Del(std::int64_t key) {
  bool found = false;
  const std::int64_t slot = FindSlot(key, &found);
  if (!found) return 0;
  keys_[static_cast<std::uint64_t>(slot)] = kKvTombstone;
  vals_[static_cast<std::uint64_t>(slot)] = 0;
  --count_;
  return 1;
}

std::int64_t TopK::Push(std::int64_t v) {
  if (len_ < kTopK) {
    std::size_t j = len_;
    while (j > 0 && vals_[j - 1] < v) {
      vals_[j] = vals_[j - 1];
      --j;
    }
    vals_[j] = v;
    ++len_;
    return vals_[len_ - 1];
  }
  if (v <= vals_[kTopK - 1]) return vals_[kTopK - 1];
  std::size_t j = kTopK - 1;
  while (j > 0 && vals_[j - 1] < v) {
    vals_[j] = vals_[j - 1];
    --j;
  }
  vals_[j] = v;
  return vals_[kTopK - 1];
}

std::int64_t ScatterGather::Scatter(std::span<const std::int64_t> pairs) {
  const std::size_t n = pairs.size() / 2;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t idx =
        static_cast<std::uint64_t>(pairs[2 * i]) & (kSgCells - 1);
    cells_[idx] = pairs[2 * i + 1];
  }
  return static_cast<std::int64_t>(n);
}

std::int64_t ScatterGather::Gather(
    std::span<const std::int64_t> indices) const {
  std::int64_t total = 0;
  for (const std::int64_t raw : indices) {
    total += cells_[static_cast<std::uint64_t>(raw) & (kSgCells - 1)];
  }
  return total;
}

}  // namespace twochains::jamlib::ref
