// jamlib: the jam standard library — reusable amcc-source jams compiled at
// build time, the "portable runtime" layer the serving scenarios stand on.
//
// The bench package (benchlib/workloads.hpp) carries the paper's §VI
// micro-kernels; jamlib is the production counterpart: data-structure
// operations a real service injects at its data instead of fetching the
// data to the code. One ried ("kvtable") owns all resident state, and the
// jams operate on it:
//
//   * kv_put / kv_get / kv_del — open-addressed hash map (linear probing,
//     tombstones, inline 64-bit values + a fixed-size per-slot blob the
//     put payload lands in). The sharded KV serving scenario injects these
//     at each key's shard owner.
//   * ctr_add / cas             — shared counters: fetch-and-add and
//     compare-and-swap on a cell array (remote atomics as jams).
//   * topk                      — running top-k (k = 8) of pushed values.
//   * scatter / gather          — vector writes into / sum-reads out of a
//     resident cell array (USR carries the index/value vectors).
//   * agg_push / agg_take       — aggregation-tree partial sums: interior
//     hosts accumulate children's pushes, then forward with agg_take.
//
// Every jam has a host-native reference twin in jamlib/reference.hpp; the
// differential suite (tests/jamlib_test.cpp) drives both with seeded op
// streams and requires identical results, and the fuzzer uses the compiled
// images as mutation seeds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "pkg/package.hpp"

namespace twochains::jamlib {

// ------------------------------------------------------------ dimensions
// Shared between the AMC sources (literal constants there — amcc has no
// cross-unit constant propagation) and the reference twins. Keep in sync
// with the sources in jamlib.cpp.

/// Hash-map capacity (open addressing; the map is full at kKvSlots live
/// keys and Put returns kKvFull).
inline constexpr std::uint64_t kKvSlots = 4096;
/// Per-slot payload blob bytes (a put's USR payload is truncated to this).
inline constexpr std::uint64_t kKvBlobBytes = 64;
/// Counter cells ctr_add / cas operate on (index is masked into range).
inline constexpr std::uint64_t kCtrCells = 256;
/// Top-k capacity.
inline constexpr std::uint64_t kTopK = 8;
/// Scatter/gather cell-array length (indices are masked into range).
inline constexpr std::uint64_t kSgCells = 4096;

// Sentinels (the map stores signed 64-bit keys; callers keep keys >= 0).
inline constexpr std::int64_t kKvEmpty = -1;      ///< never-used slot
inline constexpr std::int64_t kKvTombstone = -2;  ///< deleted slot
inline constexpr std::int64_t kKvMiss = -1;       ///< Get: key absent
inline constexpr std::int64_t kKvFull = -1;       ///< Put: table full

/// Home slot of @p key in the kv map (Knuth multiplicative hash, the same
/// expression the AMC source computes — reference.hpp mirrors via this).
inline std::uint64_t KvHomeSlot(std::int64_t key) noexcept {
  return (static_cast<std::uint64_t>(key) * 2654435761ull) % kKvSlots;
}

// -------------------------------------------------------------- package

/// Element names of every jam in the library ("kv_put", "cas", ...). The
/// fuzzer seeds its corpus from these; the differential suite iterates
/// them to guarantee no jam ships untested.
const std::vector<std::string>& JamNames();

/// A builder pre-loaded with the jamlib sources (callers may add more —
/// the serving benches add nothing, the examples add app-specific jams).
pkg::PackageBuilder MakeJamlibPackageBuilder();

/// Builds the canonical jam standard library package ("tcjamlib").
StatusOr<pkg::Package> BuildJamlibPackage();

}  // namespace twochains::jamlib
