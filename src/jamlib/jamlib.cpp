#include "jamlib/jamlib.hpp"

namespace twochains::jamlib {
namespace {

// Resident state. Dimensions are literal here (amcc compiles each unit
// standalone); jamlib.hpp mirrors them as the C++-side constants.
constexpr const char* kRiedKvtable = R"AMC(
/* ried_kvtable: resident state for the jam standard library.
     kv_*      open-addressed hash map (linear probe, tombstones,
               inline values + one 64-byte payload blob per slot)
     ctr_cells counters (fetch-and-add / compare-and-swap targets)
     topk_*    running top-k of pushed values (descending order)
     sg_cells  scatter/gather cell array
     agg_*     aggregation-tree partial-sum accumulator */

long kv_keys[4096];
long kv_vals[4096];
char kv_blob[262144];
long kv_count = 0;

long ctr_cells[256];

long topk_vals[8];
long topk_len = 0;

long sg_cells[4096];

long agg_acc = 0;
long agg_seen = 0;

long ried_kvtable(void) { return 0; }

long ried_kvtable_init(void) {
  for (long i = 0; i < 4096; ++i) {
    kv_keys[i] = -1;
    kv_vals[i] = 0;
    sg_cells[i] = 0;
  }
  for (long i = 0; i < 256; ++i) ctr_cells[i] = 0;
  for (long i = 0; i < 8; ++i) topk_vals[i] = 0;
  topk_len = 0;
  kv_count = 0;
  agg_acc = 0;
  agg_seen = 0;
  return 0;
}
)AMC";

// args = [key, value]; usr = optional payload (first 64 bytes stored in
// the slot's blob cell). Returns the slot index, or -1 when the table is
// full. Overwrites refresh both the value and the blob. Deleted slots are
// reused: the probe remembers the first tombstone and keeps scanning for
// the key until an empty slot proves absence.
constexpr const char* kJamKvPut = R"AMC(
extern long kv_keys[4096];
extern long kv_vals[4096];
extern char kv_blob[262144];
extern long kv_count;
extern void* tc_memcpy(void* dst, const void* src, unsigned long n);

long jam_kv_put(long* args, char* usr, long usr_bytes) {
  long key = args[0];
  long val = args[1];
  unsigned long home = ((unsigned long)key * 2654435761) % 4096;
  long target = -1;
  for (long i = 0; i < 4096; ++i) {
    unsigned long s = (home + i) % 4096;
    long k = kv_keys[s];
    if (k == key) {
      target = (long)s;
      break;
    }
    if (k == -2) {
      if (target < 0) target = (long)s;
    }
    if (k == -1) {
      if (target < 0) target = (long)s;
      break;
    }
  }
  if (target < 0) return -1;
  if (kv_keys[target] != key) {
    kv_keys[target] = key;
    kv_count = kv_count + 1;
  }
  kv_vals[target] = val;
  if (usr_bytes > 0) {
    long n = usr_bytes;
    if (n > 64) n = 64;
    tc_memcpy(kv_blob + target * 64, usr, (unsigned long)n);
  }
  return target;
}
)AMC";

// args = [key]. Returns the stored value, or -1 (kKvMiss) when absent.
constexpr const char* kJamKvGet = R"AMC(
extern long kv_keys[4096];
extern long kv_vals[4096];

long jam_kv_get(long* args, char* usr, long usr_bytes) {
  long key = args[0];
  unsigned long home = ((unsigned long)key * 2654435761) % 4096;
  for (long i = 0; i < 4096; ++i) {
    unsigned long s = (home + i) % 4096;
    long k = kv_keys[s];
    if (k == key) return kv_vals[s];
    if (k == -1) return -1;
  }
  return -1;
}
)AMC";

// args = [key]. Tombstones the slot; returns 1 if erased, 0 if absent.
constexpr const char* kJamKvDel = R"AMC(
extern long kv_keys[4096];
extern long kv_vals[4096];
extern long kv_count;

long jam_kv_del(long* args, char* usr, long usr_bytes) {
  long key = args[0];
  unsigned long home = ((unsigned long)key * 2654435761) % 4096;
  for (long i = 0; i < 4096; ++i) {
    unsigned long s = (home + i) % 4096;
    long k = kv_keys[s];
    if (k == key) {
      kv_keys[s] = -2;
      kv_vals[s] = 0;
      kv_count = kv_count - 1;
      return 1;
    }
    if (k == -1) return 0;
  }
  return 0;
}
)AMC";

// args = [cell, delta]. Fetch-and-add: returns the *new* value. The cell
// index is masked into range so a hostile index cannot escape the array.
constexpr const char* kJamCtrAdd = R"AMC(
extern long ctr_cells[256];

long jam_ctr_add(long* args, char* usr, long usr_bytes) {
  long cell = args[0] & 255;
  ctr_cells[cell] = ctr_cells[cell] + args[1];
  return ctr_cells[cell];
}
)AMC";

// args = [cell, expect, desired]. Compare-and-swap: returns the *old*
// value (callers detect success by old == expect).
constexpr const char* kJamCas = R"AMC(
extern long ctr_cells[256];

long jam_cas(long* args, char* usr, long usr_bytes) {
  long cell = args[0] & 255;
  long old = ctr_cells[cell];
  if (old == args[1]) ctr_cells[cell] = args[2];
  return old;
}
)AMC";

// args = [value]. Keeps the 8 largest pushed values in descending order;
// returns the smallest value currently kept (the k-th largest seen, once
// 8 or more were pushed).
constexpr const char* kJamTopk = R"AMC(
extern long topk_vals[8];
extern long topk_len;

long jam_topk(long* args, char* usr, long usr_bytes) {
  long v = args[0];
  if (topk_len < 8) {
    long j = topk_len;
    while (j > 0 && topk_vals[j - 1] < v) {
      topk_vals[j] = topk_vals[j - 1];
      j = j - 1;
    }
    topk_vals[j] = v;
    topk_len = topk_len + 1;
    return topk_vals[topk_len - 1];
  }
  if (v <= topk_vals[7]) return topk_vals[7];
  long j = 7;
  while (j > 0 && topk_vals[j - 1] < v) {
    topk_vals[j] = topk_vals[j - 1];
    j = j - 1;
  }
  topk_vals[j] = v;
  return topk_vals[7];
}
)AMC";

// usr = n (index, value) pairs of longs. Writes value into sg_cells at
// each (masked) index; returns the pair count.
constexpr const char* kJamScatter = R"AMC(
extern long sg_cells[4096];

long jam_scatter(long* args, long* usr, long usr_bytes) {
  long n = usr_bytes / 16;
  for (long i = 0; i < n; ++i) {
    long idx = usr[2 * i] & 4095;
    sg_cells[idx] = usr[2 * i + 1];
  }
  return n;
}
)AMC";

// usr = n indices (longs). Returns the sum of sg_cells over the (masked)
// indices — a gather-reduce: the indexed reads stay resident, only the
// scalar crosses the wire back.
constexpr const char* kJamGather = R"AMC(
extern long sg_cells[4096];

long jam_gather(long* args, long* usr, long usr_bytes) {
  long n = usr_bytes / 8;
  long total = 0;
  for (long i = 0; i < n; ++i) {
    total = total + sg_cells[usr[i] & 4095];
  }
  return total;
}
)AMC";

// args = [value]. Accumulates a partial sum (aggregation-tree interior
// node); returns the running total.
constexpr const char* kJamAggPush = R"AMC(
extern long agg_acc;
extern long agg_seen;

long jam_agg_push(long* args, char* usr, long usr_bytes) {
  agg_acc = agg_acc + args[0];
  agg_seen = agg_seen + 1;
  return agg_acc;
}
)AMC";

// No args. Returns the accumulated partial sum and resets the
// accumulator — the interior node's "forward my subtree and start the
// next round" step.
constexpr const char* kJamAggTake = R"AMC(
extern long agg_acc;
extern long agg_seen;

long jam_agg_take(long* args, char* usr, long usr_bytes) {
  long total = agg_acc;
  agg_acc = 0;
  agg_seen = 0;
  return total;
}
)AMC";

struct NamedSource {
  const char* file_name;
  const char* source;
};

constexpr NamedSource kSources[] = {
    {"ried_kvtable.rdc", kRiedKvtable},
    {"jam_kv_put.amc", kJamKvPut},
    {"jam_kv_get.amc", kJamKvGet},
    {"jam_kv_del.amc", kJamKvDel},
    {"jam_ctr_add.amc", kJamCtrAdd},
    {"jam_cas.amc", kJamCas},
    {"jam_topk.amc", kJamTopk},
    {"jam_scatter.amc", kJamScatter},
    {"jam_gather.amc", kJamGather},
    {"jam_agg_push.amc", kJamAggPush},
    {"jam_agg_take.amc", kJamAggTake},
};

}  // namespace

const std::vector<std::string>& JamNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const NamedSource& s : kSources) {
      const std::string file = s.file_name;
      if (file.rfind("jam_", 0) == 0) {
        v.push_back(file.substr(4, file.size() - 4 - 4));  // strip .amc
      }
    }
    return v;
  }();
  return names;
}

pkg::PackageBuilder MakeJamlibPackageBuilder() {
  pkg::PackageBuilder builder;
  // AddSourceFile only fails on non-canonical names; these are constants.
  for (const NamedSource& s : kSources) {
    (void)builder.AddSourceFile(s.file_name, s.source);
  }
  return builder;
}

StatusOr<pkg::Package> BuildJamlibPackage() {
  return MakeJamlibPackageBuilder().Build("tcjamlib");
}

}  // namespace twochains::jamlib
