// The sharded in-memory KV service: the paper's thesis ("move code to
// data") as a service contract. Keys are partitioned across shard hosts;
// a client never fetches a shard's memory — it injects the jamlib kv jam
// at the key's owner and gets the scalar result back. Data never moves,
// code does; with the receiver-side jam cache warm, the code stops moving
// too (invoke-by-handle), and only arguments cross the wire.
//
// This header is deliberately transport-free: it defines the *addressing*
// (key -> shard -> fabric host) and the *request encoding* (op -> jam
// name + args). The open-loop driver in benchlib/openloop.hpp and the
// kv_cluster example both speak it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace twochains::jamlib {

/// Maps keys to their owning shard host. A 64-bit mix (splitmix-style
/// finalizer) spreads consecutive keys across shards, so a Zipf-popular
/// key *head* (ranks 0, 1, 2, ...) does not pile onto shard 0 — per-shard
/// load skew then comes only from genuine per-key heat, which is the
/// serving behavior worth measuring.
class KvShardMap {
 public:
  /// @p shards owners, occupying fabric hosts
  /// [first_shard_host, first_shard_host + shards).
  KvShardMap(std::uint32_t shards, std::uint32_t first_shard_host) noexcept
      : shards_(shards), first_host_(first_shard_host) {}

  std::uint32_t shards() const noexcept { return shards_; }
  std::uint32_t first_shard_host() const noexcept { return first_host_; }

  /// Shard index of @p key in [0, shards).
  std::uint32_t ShardOf(std::uint64_t key) const noexcept {
    return static_cast<std::uint32_t>(Mix(key) % shards_);
  }
  /// Fabric host index owning @p key.
  std::uint32_t OwnerHostOf(std::uint64_t key) const noexcept {
    return first_host_ + ShardOf(key);
  }

 private:
  static std::uint64_t Mix(std::uint64_t x) noexcept {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  std::uint32_t shards_;
  std::uint32_t first_host_;
};

/// The service's operation set (each maps to one jamlib jam).
enum class KvOp : std::uint8_t { kGet, kPut, kDel };

/// One client request (value is ignored for kGet / kDel).
struct KvRequest {
  KvOp op = KvOp::kGet;
  std::uint64_t key = 0;
  std::int64_t value = 0;
};

/// The jamlib element name implementing @p op.
const char* KvJamFor(KvOp op) noexcept;

/// The argument block Send() needs for @p request.
std::vector<std::uint64_t> KvArgsFor(const KvRequest& request);

}  // namespace twochains::jamlib
