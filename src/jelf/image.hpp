// Linked images: the output of the static linker and the unit the dynamic
// loader maps into a host.
//
// Image layout (offsets within one contiguous allocation):
//
//   +0                .text     (all objects' code, 8-aligned)
//   +rodata_offset    .rodata   (merged, 16-aligned)
//   +got_offset       GOT       (8 bytes per slot, filled at load time)
//   +data_offset      .data     (merged writable data)
//
// With `page_align_sections` (the default for ried libraries) each section
// starts on a page so the loader can enforce W^X: text RX, rodata R, GOT
// RW-then-RO, data RW. Jams link with it off — their images are code+rodata
// blobs that travel inside message frames (the GOT section is dropped and
// replaced by the patched GOT in the frame).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "jamvm/program.hpp"

namespace twochains::jelf {

/// A load-time 8-byte patch: either "base + target_offset" (internal) or
/// the namespace value of `symbol` plus addend (external).
struct LoadFixup {
  std::uint64_t image_offset = 0;  ///< where the 8 bytes live
  bool internal = false;
  std::uint64_t target_offset = 0;  ///< internal: offset within the image
  std::string symbol;               ///< external: resolve via namespace
  std::int64_t addend = 0;
};

struct ExportEntry {
  std::uint64_t offset = 0;  ///< within the image
  vm::SymbolKind kind = vm::SymbolKind::kFunc;
};

struct LinkedImage {
  std::string name;

  std::vector<std::uint8_t> text;
  std::vector<std::uint8_t> rodata;
  std::vector<std::uint8_t> data;

  std::uint64_t rodata_offset = 0;
  std::uint64_t got_offset = 0;
  std::uint64_t data_offset = 0;
  std::uint64_t total_size = 0;
  bool page_aligned = false;

  /// GOT slot order: slot i belongs to got_symbols[i].
  std::vector<std::string> got_symbols;

  /// Exported (global, defined) symbols.
  std::map<std::string, ExportEntry> exports;

  std::vector<LoadFixup> fixups;

  std::uint32_t got_slot_count() const noexcept {
    return static_cast<std::uint32_t>(got_symbols.size());
  }

  /// The injectable blob for jams: text..rodata (everything before the
  /// GOT), which is what gets packed into a message CODE section.
  std::uint64_t code_blob_size() const noexcept { return got_offset; }
};

}  // namespace twochains::jelf
