#include "jelf/format.hpp"

#include "common/byte_io.hpp"

namespace twochains::jelf {
namespace {

constexpr std::uint8_t kTypeObject = 0;
constexpr std::uint8_t kTypeImage = 1;

void WriteHeader(ByteWriter& w, std::uint8_t type) {
  w.U32(kJelfMagic);
  w.U16(kJelfVersion);
  w.U8(type);
  w.U8(0);  // reserved
}

Status CheckHeader(ByteReader& r, std::uint8_t expected_type) {
  TC_ASSIGN_OR_RETURN(const auto magic, r.U32());
  if (magic != kJelfMagic) return DataLoss("bad JELF magic");
  TC_ASSIGN_OR_RETURN(const auto version, r.U16());
  if (version != kJelfVersion) return DataLoss("unsupported JELF version");
  TC_ASSIGN_OR_RETURN(const auto type, r.U8());
  if (type != expected_type) return DataLoss("wrong JELF record type");
  TC_ASSIGN_OR_RETURN(const auto reserved, r.U8());
  (void)reserved;
  return Status::Ok();
}

void WriteBlob(ByteWriter& w, const std::vector<std::uint8_t>& blob) {
  w.U64(blob.size());
  w.Bytes(blob);
}

StatusOr<std::vector<std::uint8_t>> ReadBlob(ByteReader& r) {
  TC_ASSIGN_OR_RETURN(const auto size, r.U64());
  TC_ASSIGN_OR_RETURN(const auto bytes, r.Bytes(size));
  return std::vector<std::uint8_t>(bytes.begin(), bytes.end());
}

}  // namespace

std::vector<std::uint8_t> SerializeObject(const vm::ObjectCode& object) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  WriteHeader(w, kTypeObject);
  w.LengthPrefixedString(object.source_name);
  WriteBlob(w, object.text);
  WriteBlob(w, object.rodata);
  WriteBlob(w, object.data);
  w.U32(static_cast<std::uint32_t>(object.symbols.size()));
  for (const auto& sym : object.symbols) {
    w.LengthPrefixedString(sym.name);
    w.U8(static_cast<std::uint8_t>(sym.section));
    w.U64(sym.offset);
    w.U8(sym.defined ? 1 : 0);
    w.U8(sym.global ? 1 : 0);
    w.U8(static_cast<std::uint8_t>(sym.kind));
  }
  w.U32(static_cast<std::uint32_t>(object.relocs.size()));
  for (const auto& reloc : object.relocs) {
    w.U8(static_cast<std::uint8_t>(reloc.kind));
    w.U8(static_cast<std::uint8_t>(reloc.section));
    w.U64(reloc.offset);
    w.LengthPrefixedString(reloc.symbol);
    w.I64(reloc.addend);
  }
  return out;
}

StatusOr<vm::ObjectCode> ParseObject(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  TC_RETURN_IF_ERROR(CheckHeader(r, kTypeObject));
  vm::ObjectCode obj;
  TC_ASSIGN_OR_RETURN(obj.source_name, r.LengthPrefixedString());
  TC_ASSIGN_OR_RETURN(obj.text, ReadBlob(r));
  TC_ASSIGN_OR_RETURN(obj.rodata, ReadBlob(r));
  TC_ASSIGN_OR_RETURN(obj.data, ReadBlob(r));
  TC_ASSIGN_OR_RETURN(const auto nsyms, r.U32());
  for (std::uint32_t i = 0; i < nsyms; ++i) {
    vm::Symbol sym;
    TC_ASSIGN_OR_RETURN(sym.name, r.LengthPrefixedString());
    TC_ASSIGN_OR_RETURN(const auto section, r.U8());
    if (section > 2) return DataLoss("bad symbol section");
    sym.section = static_cast<vm::SectionKind>(section);
    TC_ASSIGN_OR_RETURN(sym.offset, r.U64());
    TC_ASSIGN_OR_RETURN(const auto defined, r.U8());
    sym.defined = defined != 0;
    TC_ASSIGN_OR_RETURN(const auto global, r.U8());
    sym.global = global != 0;
    TC_ASSIGN_OR_RETURN(const auto kind, r.U8());
    if (kind > 1) return DataLoss("bad symbol kind");
    sym.kind = static_cast<vm::SymbolKind>(kind);
    obj.symbols.push_back(std::move(sym));
  }
  TC_ASSIGN_OR_RETURN(const auto nrelocs, r.U32());
  for (std::uint32_t i = 0; i < nrelocs; ++i) {
    vm::Reloc reloc;
    TC_ASSIGN_OR_RETURN(const auto kind, r.U8());
    if (kind > 2) return DataLoss("bad reloc kind");
    reloc.kind = static_cast<vm::RelocKind>(kind);
    TC_ASSIGN_OR_RETURN(const auto section, r.U8());
    if (section > 2) return DataLoss("bad reloc section");
    reloc.section = static_cast<vm::SectionKind>(section);
    TC_ASSIGN_OR_RETURN(reloc.offset, r.U64());
    TC_ASSIGN_OR_RETURN(reloc.symbol, r.LengthPrefixedString());
    TC_ASSIGN_OR_RETURN(const auto addend, r.U64());
    reloc.addend = static_cast<std::int64_t>(addend);
    obj.relocs.push_back(std::move(reloc));
  }
  return obj;
}

std::vector<std::uint8_t> SerializeImage(const LinkedImage& image) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  WriteHeader(w, kTypeImage);
  w.LengthPrefixedString(image.name);
  WriteBlob(w, image.text);
  WriteBlob(w, image.rodata);
  WriteBlob(w, image.data);
  w.U64(image.rodata_offset);
  w.U64(image.got_offset);
  w.U64(image.data_offset);
  w.U64(image.total_size);
  w.U8(image.page_aligned ? 1 : 0);
  w.U32(static_cast<std::uint32_t>(image.got_symbols.size()));
  for (const auto& sym : image.got_symbols) w.LengthPrefixedString(sym);
  w.U32(static_cast<std::uint32_t>(image.exports.size()));
  for (const auto& [name, entry] : image.exports) {
    w.LengthPrefixedString(name);
    w.U64(entry.offset);
    w.U8(static_cast<std::uint8_t>(entry.kind));
  }
  w.U32(static_cast<std::uint32_t>(image.fixups.size()));
  for (const auto& fixup : image.fixups) {
    w.U64(fixup.image_offset);
    w.U8(fixup.internal ? 1 : 0);
    w.U64(fixup.target_offset);
    w.LengthPrefixedString(fixup.symbol);
    w.I64(fixup.addend);
  }
  return out;
}

StatusOr<LinkedImage> ParseImage(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  TC_RETURN_IF_ERROR(CheckHeader(r, kTypeImage));
  LinkedImage image;
  TC_ASSIGN_OR_RETURN(image.name, r.LengthPrefixedString());
  TC_ASSIGN_OR_RETURN(image.text, ReadBlob(r));
  TC_ASSIGN_OR_RETURN(image.rodata, ReadBlob(r));
  TC_ASSIGN_OR_RETURN(image.data, ReadBlob(r));
  TC_ASSIGN_OR_RETURN(image.rodata_offset, r.U64());
  TC_ASSIGN_OR_RETURN(image.got_offset, r.U64());
  TC_ASSIGN_OR_RETURN(image.data_offset, r.U64());
  TC_ASSIGN_OR_RETURN(image.total_size, r.U64());
  TC_ASSIGN_OR_RETURN(const auto aligned, r.U8());
  image.page_aligned = aligned != 0;
  TC_ASSIGN_OR_RETURN(const auto ngot, r.U32());
  for (std::uint32_t i = 0; i < ngot; ++i) {
    TC_ASSIGN_OR_RETURN(auto sym, r.LengthPrefixedString());
    image.got_symbols.push_back(std::move(sym));
  }
  TC_ASSIGN_OR_RETURN(const auto nexports, r.U32());
  for (std::uint32_t i = 0; i < nexports; ++i) {
    TC_ASSIGN_OR_RETURN(auto name, r.LengthPrefixedString());
    ExportEntry entry;
    TC_ASSIGN_OR_RETURN(entry.offset, r.U64());
    TC_ASSIGN_OR_RETURN(const auto kind, r.U8());
    if (kind > 1) return DataLoss("bad export kind");
    entry.kind = static_cast<vm::SymbolKind>(kind);
    image.exports.emplace(std::move(name), entry);
  }
  TC_ASSIGN_OR_RETURN(const auto nfixups, r.U32());
  for (std::uint32_t i = 0; i < nfixups; ++i) {
    LoadFixup fixup;
    TC_ASSIGN_OR_RETURN(fixup.image_offset, r.U64());
    TC_ASSIGN_OR_RETURN(const auto internal, r.U8());
    fixup.internal = internal != 0;
    TC_ASSIGN_OR_RETURN(fixup.target_offset, r.U64());
    TC_ASSIGN_OR_RETURN(fixup.symbol, r.LengthPrefixedString());
    TC_ASSIGN_OR_RETURN(const auto addend, r.U64());
    fixup.addend = static_cast<std::int64_t>(addend);
    image.fixups.push_back(std::move(fixup));
  }
  return image;
}

}  // namespace twochains::jelf
