// Dynamic loading: per-host symbol namespaces and the library loader.
//
// Each simulated process (host) has one HostNamespace — the paper's
// "ELF library loading as a per-process name resolution mechanism" (§II-B).
// Loading a ried library allocates the image in host memory, binds its GOT
// against the namespace (bind-now), applies absolute fixups, registers its
// exports, and sets section page permissions. Rebinding support models the
// paper's remote-update story: replace a library, refresh dependents' GOTs,
// and subsequent active messages resolve to the new code.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "jelf/image.hpp"
#include "mem/host_memory.hpp"

namespace twochains::jelf {

/// Per-process symbol table: name -> value (a virtual address for jam code
/// and data, or a tagged native handle — see jamvm/interpreter.hpp).
class HostNamespace {
 public:
  /// Defines @p name. Fails with kAlreadyExists unless @p allow_redefine.
  Status Define(const std::string& name, std::uint64_t value,
                bool allow_redefine = false);

  StatusOr<std::uint64_t> Lookup(const std::string& name) const;
  bool Contains(const std::string& name) const {
    return values_.contains(name);
  }
  Status Remove(const std::string& name);

  /// All symbols, sorted by name (namespace-sync serialization).
  const std::map<std::string, std::uint64_t>& entries() const {
    return values_;
  }

 private:
  std::map<std::string, std::uint64_t> values_;
};

struct LoadedLibrary {
  std::string name;
  mem::VirtAddr base = 0;
  std::uint64_t size = 0;
  mem::VirtAddr got_addr = 0;
  std::uint32_t got_slots = 0;
  std::vector<std::string> got_symbols;  ///< for rebinding
  std::map<std::string, mem::VirtAddr> exports;  ///< absolute VAs
};

struct LoadOptions {
  /// Enforce W^X section permissions (requires a page-aligned image).
  bool enforce_section_permissions = true;
  /// Make the GOT read-only after binding (§V: receiver-side GOT hardening).
  bool got_read_only = false;
  /// Permit this library's exports to replace existing namespace entries
  /// (library hot-swap / remote update).
  bool allow_export_override = false;
  /// Run the static verifier (vm::VerifyCode with the image's fixed GOT
  /// window) over the text before anything goes live. Hardened receivers
  /// enable this for every package load; the default stays off because a
  /// local build's own libraries are trusted in the paper's model.
  bool verify_code = false;
};

/// Structural validation of a LinkedImage's declared layout: sections in
/// order (text, rodata, GOT, data), none overlapping, everything inside
/// total_size, exports and fixups in-image. Packages cross the wire
/// (pkg::ParsePackage), so these offsets are attacker-controlled — a
/// hostile image with got_offset < text.size() would otherwise wrap the
/// verifier's rodata bound and overflow the injectable-blob copy.
Status ValidateImageLayout(const LinkedImage& image);

/// Loads @p image into @p memory, binding against (and extending)
/// @p ns. Unresolved GOT symbols are an error (bind-now semantics).
StatusOr<LoadedLibrary> LoadLibrary(mem::HostMemory& memory,
                                    const LinkedImage& image,
                                    HostNamespace& ns,
                                    const LoadOptions& options = {});

/// Re-resolves every GOT slot of @p lib against the namespace's current
/// state (after a dependency was hot-swapped). Honors a read-only GOT by
/// temporarily restoring write permission.
Status RebindGot(mem::HostMemory& memory, const LoadedLibrary& lib,
                 const HostNamespace& ns);

}  // namespace twochains::jelf
