#include "jelf/got_rewriter.hpp"

#include "common/bitops.hpp"
#include "common/strfmt.hpp"
#include "jamvm/isa.hpp"

namespace twochains::jelf {

StatusOr<RewriteStats> RewriteGotAccesses(LinkedImage& image) {
  RewriteStats stats;
  for (std::size_t off = 0; off < image.text.size(); off += vm::kInstrBytes) {
    auto decoded = vm::Decode(image.text.data() + off);
    if (!decoded) {
      return DataLoss(StrFormat("undecodable instruction at +%zu", off));
    }
    if (decoded->op != vm::Opcode::kLdgFix) continue;

    // Recover the slot index this fixed access referenced.
    const std::int64_t target =
        static_cast<std::int64_t>(off) + decoded->imm;
    const auto got_begin = static_cast<std::int64_t>(image.got_offset);
    const auto got_end = got_begin + 8ll * image.got_slot_count();
    if (target < got_begin || target >= got_end || (target - got_begin) % 8) {
      return DataLoss(
          StrFormat("ldg.fix at +%zu does not address a GOT slot", off));
    }
    const std::int64_t slot = (target - got_begin) / 8;
    if (slot > 255) {
      return OutOfRange(
          StrFormat("GOT slot %lld exceeds the ldg.pre index range "
                    "(jams support at most 256 external symbols)",
                    static_cast<long long>(slot)));
    }

    vm::Instr rewritten;
    rewritten.op = vm::Opcode::kLdgPre;
    rewritten.rd = decoded->rd;
    rewritten.rs2 = static_cast<std::uint8_t>(slot);
    // PC-relative offset from this instruction to the preamble slot, which
    // sits at kPreambleSlotOffset bytes before the code start.
    const std::int64_t pre_delta =
        kPreambleSlotOffset - static_cast<std::int64_t>(off);
    if (pre_delta < INT32_MIN) return OutOfRange("preamble offset overflow");
    rewritten.imm = static_cast<std::int32_t>(pre_delta);
    vm::Encode(rewritten, image.text.data() + off);
    ++stats.rewritten;
  }
  return stats;
}

bool IsFullyRewritten(const LinkedImage& image) {
  for (std::size_t off = 0; off < image.text.size(); off += vm::kInstrBytes) {
    const auto decoded = vm::Decode(image.text.data() + off);
    if (decoded && decoded->op == vm::Opcode::kLdgFix) return false;
  }
  return true;
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

constexpr std::uint64_t FnvMix(std::uint64_t h, std::uint8_t byte) noexcept {
  return (h ^ byte) * kFnvPrime;
}

std::uint64_t FnvBytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) h = FnvMix(h, p[i]);
  return h;
}

}  // namespace

std::uint64_t ComputeJamHandle(std::span<const std::uint8_t> code,
                               std::span<const std::string> got_symbols) {
  std::uint64_t h = kFnvOffset;
  const std::uint64_t code_size = code.size();
  h = FnvBytes(h, &code_size, 8);
  h = FnvBytes(h, code.data(), code.size());
  const std::uint64_t slots = got_symbols.size();
  h = FnvBytes(h, &slots, 8);
  for (const std::string& sym : got_symbols) {
    h = FnvBytes(h, sym.data(), sym.size());
    h = FnvMix(h, 0);  // terminator so {"ab","c"} != {"a","bc"}
  }
  return h;
}

StatusOr<CachedJamImage> LinkCachedImage(
    mem::HostMemory& memory, std::span<const std::uint64_t> gotp_values,
    std::span<const std::uint8_t> code, std::string_view tag,
    mem::DomainId domain_hint) {
  if (code.empty()) return InvalidArgument("cached jam has no code");

  // Mirror the frame prefix layout (FrameLayout::Compute without the
  // header): GOTP at 0, then a 16-byte PRE region ending where code begins.
  const std::uint64_t gotp_bytes = 8ull * gotp_values.size();
  const std::uint64_t code_off = AlignUp(gotp_bytes + 16, 16);
  const std::uint64_t total = code_off + code.size();

  TC_ASSIGN_OR_RETURN(const mem::VirtAddr base,
                      memory.Allocate(total, 16, mem::Perm::kRWX, tag,
                                      domain_hint));
  CachedJamImage image;
  image.base = base;
  image.size = total;
  image.gotp_addr = base;
  image.code_addr = base + code_off;
  image.pre_addr = image.code_addr - 16;
  image.got_slots = static_cast<std::uint32_t>(gotp_values.size());
  image.code_size = code.size();

  if (!gotp_values.empty()) {
    TC_RETURN_IF_ERROR(memory.Write(
        image.gotp_addr,
        {reinterpret_cast<const std::uint8_t*>(gotp_values.data()),
         gotp_bytes}));
  }
  TC_RETURN_IF_ERROR(memory.StoreU64(image.pre_addr, image.gotp_addr));
  TC_RETURN_IF_ERROR(memory.Write(image.code_addr, code));
  return image;
}

Status RelinkCachedImage(mem::HostMemory& memory, const CachedJamImage& image,
                         mem::VirtAddr gotp_addr) {
  if (image.base == 0 || image.code_size == 0) {
    return FailedPrecondition("cached image not linked");
  }
  const mem::VirtAddr target = gotp_addr != 0 ? gotp_addr : image.gotp_addr;
  TC_ASSIGN_OR_RETURN(const std::uint64_t current,
                      memory.LoadU64(image.pre_addr));
  if (current != target) {
    // The PRE update is the runtime's own privileged store — jam code never
    // writes it — so it rides the DMA plane and stays legal when the
    // hardened receiver seals the cached image RX.
    TC_RETURN_IF_ERROR(memory.DmaWrite(
        image.pre_addr,
        {reinterpret_cast<const std::uint8_t*>(&target), 8}));
  }
  return Status::Ok();
}

Status ReleaseCachedImage(mem::HostMemory& memory,
                          const CachedJamImage& image) {
  if (image.base == 0) return Status::Ok();
  return memory.Free(image.base);
}

}  // namespace twochains::jelf
