#include "jelf/got_rewriter.hpp"

#include "common/strfmt.hpp"
#include "jamvm/isa.hpp"

namespace twochains::jelf {

StatusOr<RewriteStats> RewriteGotAccesses(LinkedImage& image) {
  RewriteStats stats;
  for (std::size_t off = 0; off < image.text.size(); off += vm::kInstrBytes) {
    auto decoded = vm::Decode(image.text.data() + off);
    if (!decoded) {
      return DataLoss(StrFormat("undecodable instruction at +%zu", off));
    }
    if (decoded->op != vm::Opcode::kLdgFix) continue;

    // Recover the slot index this fixed access referenced.
    const std::int64_t target =
        static_cast<std::int64_t>(off) + decoded->imm;
    const auto got_begin = static_cast<std::int64_t>(image.got_offset);
    const auto got_end = got_begin + 8ll * image.got_slot_count();
    if (target < got_begin || target >= got_end || (target - got_begin) % 8) {
      return DataLoss(
          StrFormat("ldg.fix at +%zu does not address a GOT slot", off));
    }
    const std::int64_t slot = (target - got_begin) / 8;
    if (slot > 255) {
      return OutOfRange(
          StrFormat("GOT slot %lld exceeds the ldg.pre index range "
                    "(jams support at most 256 external symbols)",
                    static_cast<long long>(slot)));
    }

    vm::Instr rewritten;
    rewritten.op = vm::Opcode::kLdgPre;
    rewritten.rd = decoded->rd;
    rewritten.rs2 = static_cast<std::uint8_t>(slot);
    // PC-relative offset from this instruction to the preamble slot, which
    // sits at kPreambleSlotOffset bytes before the code start.
    const std::int64_t pre_delta =
        kPreambleSlotOffset - static_cast<std::int64_t>(off);
    if (pre_delta < INT32_MIN) return OutOfRange("preamble offset overflow");
    rewritten.imm = static_cast<std::int32_t>(pre_delta);
    vm::Encode(rewritten, image.text.data() + off);
    ++stats.rewritten;
  }
  return stats;
}

bool IsFullyRewritten(const LinkedImage& image) {
  for (std::size_t off = 0; off < image.text.size(); off += vm::kInstrBytes) {
    const auto decoded = vm::Decode(image.text.data() + off);
    if (decoded && decoded->op == vm::Opcode::kLdgFix) return false;
  }
  return true;
}

}  // namespace twochains::jelf
