#include "jelf/loader.hpp"

#include <span>

#include "common/strfmt.hpp"
#include "jamvm/verifier.hpp"

namespace twochains::jelf {

Status ValidateImageLayout(const LinkedImage& image) {
  // Every bound below is checked with subtractions against already-proven
  // quantities, so attacker-controlled offsets cannot wrap the arithmetic.
  const std::uint64_t text_size = image.text.size();
  if (image.rodata_offset < text_size) {
    return InvalidArgument(StrFormat(
        "image '%s': rodata_offset %llu overlaps text (%llu B)",
        image.name.c_str(),
        static_cast<unsigned long long>(image.rodata_offset),
        static_cast<unsigned long long>(text_size)));
  }
  if (image.got_offset < image.rodata_offset ||
      image.got_offset - image.rodata_offset < image.rodata.size()) {
    return InvalidArgument(StrFormat(
        "image '%s': rodata (%llu B at %llu) overlaps the GOT at %llu",
        image.name.c_str(),
        static_cast<unsigned long long>(image.rodata.size()),
        static_cast<unsigned long long>(image.rodata_offset),
        static_cast<unsigned long long>(image.got_offset)));
  }
  const std::uint64_t got_bytes = 8ull * image.got_slot_count();
  if (image.data_offset < image.got_offset ||
      image.data_offset - image.got_offset < got_bytes) {
    return InvalidArgument(StrFormat(
        "image '%s': GOT (%llu B at %llu) overlaps data at %llu",
        image.name.c_str(), static_cast<unsigned long long>(got_bytes),
        static_cast<unsigned long long>(image.got_offset),
        static_cast<unsigned long long>(image.data_offset)));
  }
  if (image.total_size < image.data_offset ||
      image.total_size - image.data_offset < image.data.size()) {
    return InvalidArgument(StrFormat(
        "image '%s': data (%llu B at %llu) exceeds total_size %llu",
        image.name.c_str(),
        static_cast<unsigned long long>(image.data.size()),
        static_cast<unsigned long long>(image.data_offset),
        static_cast<unsigned long long>(image.total_size)));
  }
  for (const auto& [name, entry] : image.exports) {
    if (entry.offset >= image.total_size) {
      return InvalidArgument(StrFormat(
          "image '%s': export '%s' at %llu is outside the image",
          image.name.c_str(), name.c_str(),
          static_cast<unsigned long long>(entry.offset)));
    }
  }
  for (const LoadFixup& fixup : image.fixups) {
    if (fixup.image_offset > image.total_size ||
        image.total_size - fixup.image_offset < 8) {
      return InvalidArgument(StrFormat(
          "image '%s': fixup slot at %llu is outside the image",
          image.name.c_str(),
          static_cast<unsigned long long>(fixup.image_offset)));
    }
    if (fixup.internal && fixup.target_offset >= image.total_size) {
      return InvalidArgument(StrFormat(
          "image '%s': internal fixup target %llu is outside the image",
          image.name.c_str(),
          static_cast<unsigned long long>(fixup.target_offset)));
    }
  }
  return Status::Ok();
}

Status HostNamespace::Define(const std::string& name, std::uint64_t value,
                             bool allow_redefine) {
  const auto it = values_.find(name);
  if (it != values_.end()) {
    if (!allow_redefine) {
      return AlreadyExists(StrFormat("symbol '%s'", name.c_str()));
    }
    it->second = value;
    return Status::Ok();
  }
  values_.emplace(name, value);
  return Status::Ok();
}

StatusOr<std::uint64_t> HostNamespace::Lookup(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return NotFound(StrFormat("unresolved symbol '%s'", name.c_str()));
  }
  return it->second;
}

Status HostNamespace::Remove(const std::string& name) {
  if (values_.erase(name) == 0) {
    return NotFound(StrFormat("symbol '%s'", name.c_str()));
  }
  return Status::Ok();
}

StatusOr<LoadedLibrary> LoadLibrary(mem::HostMemory& memory,
                                    const LinkedImage& image,
                                    HostNamespace& ns,
                                    const LoadOptions& options) {
  if (options.enforce_section_permissions && !image.page_aligned) {
    return FailedPrecondition(
        "section permissions require a page-aligned image "
        "(link with page_align_sections)");
  }
  TC_RETURN_IF_ERROR(ValidateImageLayout(image));
  if (options.verify_code && !image.text.empty()) {
    vm::VerifyLimits limits;
    limits.got_slots = image.got_slot_count();
    // Libraries may lea anywhere in their own image (rodata, GOT, data).
    limits.rodata_bytes = image.total_size - image.text.size();
    limits.fixed_got_offset = static_cast<std::int64_t>(image.got_offset);
    Status verified = vm::VerifyCode(image.text, limits);
    if (!verified.ok()) {
      return Status(verified.code(),
                    StrFormat("library '%s' failed verification: %s",
                              image.name.c_str(),
                              verified.message().c_str()));
    }
  }

  // Allocate and populate, writable during relocation.
  TC_ASSIGN_OR_RETURN(
      const mem::VirtAddr base,
      memory.Allocate(image.total_size, mem::kPageSize, mem::Perm::kRW,
                      "lib:" + image.name));
  TC_RETURN_IF_ERROR(memory.Write(base, image.text));
  if (!image.rodata.empty()) {
    TC_RETURN_IF_ERROR(memory.Write(base + image.rodata_offset, image.rodata));
  }
  if (!image.data.empty()) {
    TC_RETURN_IF_ERROR(memory.Write(base + image.data_offset, image.data));
  }

  LoadedLibrary lib;
  lib.name = image.name;
  lib.base = base;
  lib.size = image.total_size;
  lib.got_addr = base + image.got_offset;
  lib.got_slots = image.got_slot_count();
  lib.got_symbols = image.got_symbols;

  // Bind-now GOT resolution. Note: a library may reference its own exports
  // through the GOT; make them visible first so self-references resolve,
  // but keep a rollback list in case binding fails midway.
  std::vector<std::string> defined_now;
  auto rollback = [&] {
    for (const auto& name : defined_now) (void)ns.Remove(name);
    (void)memory.Free(base);
  };
  for (const auto& [name, entry] : image.exports) {
    const mem::VirtAddr addr = base + entry.offset;
    Status st = ns.Define(name, addr, options.allow_export_override);
    if (!st.ok()) {
      rollback();
      return st;
    }
    defined_now.push_back(name);
    lib.exports.emplace(name, addr);
  }

  for (std::uint32_t slot = 0; slot < lib.got_slots; ++slot) {
    auto value = ns.Lookup(image.got_symbols[slot]);
    if (!value.ok()) {
      rollback();
      return Status(value.status().code(),
                    StrFormat("binding %s: %s", image.name.c_str(),
                              value.status().message().c_str()));
    }
    Status st = memory.StoreU64(lib.got_addr + 8ull * slot, *value);
    if (!st.ok()) {
      rollback();
      return st;
    }
  }

  for (const auto& fixup : image.fixups) {
    std::uint64_t value;
    if (fixup.internal) {
      value = base + fixup.target_offset;
    } else {
      auto resolved = ns.Lookup(fixup.symbol);
      if (!resolved.ok()) {
        rollback();
        return resolved.status();
      }
      value = *resolved + static_cast<std::uint64_t>(fixup.addend);
    }
    Status st = memory.StoreU64(base + fixup.image_offset, value);
    if (!st.ok()) {
      rollback();
      return st;
    }
  }

  // Seal section permissions: text RX, rodata R, GOT RW|R, data RW. A
  // failure here rolls back like the binding failures above — a library
  // that could not be sealed must not stay resolvable half-sealed. (Exports
  // that *overrode* earlier definitions cannot restore the old value; the
  // override option is a deliberate hot-swap escape hatch.)
  if (options.enforce_section_permissions) {
    const auto seal = [&](std::uint64_t off, std::uint64_t len,
                          mem::Perm perm) -> Status {
      if (len == 0) return Status::Ok();
      return memory.Protect(base + off, len, perm);
    };
    Status st = seal(0, image.rodata_offset, mem::Perm::kRX);
    if (st.ok()) {
      st = seal(image.rodata_offset, image.got_offset - image.rodata_offset,
                mem::Perm::kRead);
    }
    if (st.ok()) {
      st = seal(image.got_offset, image.data_offset - image.got_offset,
                options.got_read_only ? mem::Perm::kRead : mem::Perm::kRW);
    }
    if (st.ok()) {
      st = seal(image.data_offset, image.total_size - image.data_offset,
                mem::Perm::kRW);
    }
    if (!st.ok()) {
      rollback();
      return st;
    }
  }

  return lib;
}

Status RebindGot(mem::HostMemory& memory, const LoadedLibrary& lib,
                 const HostNamespace& ns) {
  if (lib.got_slots == 0) return Status::Ok();
  // The GOT may have been sealed read-only; lift and restore around the
  // rebinding (what a real loader does with mprotect during lazy updates).
  TC_ASSIGN_OR_RETURN(const mem::Perm old_perm,
                      memory.PagePerms(lib.got_addr));
  TC_RETURN_IF_ERROR(
      memory.Protect(lib.got_addr, 8ull * lib.got_slots, mem::Perm::kRW));
  Status result = Status::Ok();
  for (std::uint32_t slot = 0; slot < lib.got_slots; ++slot) {
    auto value = ns.Lookup(lib.got_symbols[slot]);
    if (!value.ok()) {
      result = value.status();
      break;
    }
    Status st = memory.StoreU64(lib.got_addr + 8ull * slot, *value);
    if (!st.ok()) {
      result = st;
      break;
    }
  }
  TC_RETURN_IF_ERROR(
      memory.Protect(lib.got_addr, 8ull * lib.got_slots, old_perm));
  return result;
}

}  // namespace twochains::jelf
