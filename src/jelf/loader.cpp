#include "jelf/loader.hpp"

#include <span>

#include "common/strfmt.hpp"

namespace twochains::jelf {

Status HostNamespace::Define(const std::string& name, std::uint64_t value,
                             bool allow_redefine) {
  const auto it = values_.find(name);
  if (it != values_.end()) {
    if (!allow_redefine) {
      return AlreadyExists(StrFormat("symbol '%s'", name.c_str()));
    }
    it->second = value;
    return Status::Ok();
  }
  values_.emplace(name, value);
  return Status::Ok();
}

StatusOr<std::uint64_t> HostNamespace::Lookup(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return NotFound(StrFormat("unresolved symbol '%s'", name.c_str()));
  }
  return it->second;
}

Status HostNamespace::Remove(const std::string& name) {
  if (values_.erase(name) == 0) {
    return NotFound(StrFormat("symbol '%s'", name.c_str()));
  }
  return Status::Ok();
}

StatusOr<LoadedLibrary> LoadLibrary(mem::HostMemory& memory,
                                    const LinkedImage& image,
                                    HostNamespace& ns,
                                    const LoadOptions& options) {
  if (options.enforce_section_permissions && !image.page_aligned) {
    return FailedPrecondition(
        "section permissions require a page-aligned image "
        "(link with page_align_sections)");
  }

  // Allocate and populate, writable during relocation.
  TC_ASSIGN_OR_RETURN(
      const mem::VirtAddr base,
      memory.Allocate(image.total_size, mem::kPageSize, mem::Perm::kRW,
                      "lib:" + image.name));
  TC_RETURN_IF_ERROR(memory.Write(base, image.text));
  if (!image.rodata.empty()) {
    TC_RETURN_IF_ERROR(memory.Write(base + image.rodata_offset, image.rodata));
  }
  if (!image.data.empty()) {
    TC_RETURN_IF_ERROR(memory.Write(base + image.data_offset, image.data));
  }

  LoadedLibrary lib;
  lib.name = image.name;
  lib.base = base;
  lib.size = image.total_size;
  lib.got_addr = base + image.got_offset;
  lib.got_slots = image.got_slot_count();
  lib.got_symbols = image.got_symbols;

  // Bind-now GOT resolution. Note: a library may reference its own exports
  // through the GOT; make them visible first so self-references resolve,
  // but keep a rollback list in case binding fails midway.
  std::vector<std::string> defined_now;
  auto rollback = [&] {
    for (const auto& name : defined_now) (void)ns.Remove(name);
    (void)memory.Free(base);
  };
  for (const auto& [name, entry] : image.exports) {
    const mem::VirtAddr addr = base + entry.offset;
    Status st = ns.Define(name, addr, options.allow_export_override);
    if (!st.ok()) {
      rollback();
      return st;
    }
    defined_now.push_back(name);
    lib.exports.emplace(name, addr);
  }

  for (std::uint32_t slot = 0; slot < lib.got_slots; ++slot) {
    auto value = ns.Lookup(image.got_symbols[slot]);
    if (!value.ok()) {
      rollback();
      return Status(value.status().code(),
                    StrFormat("binding %s: %s", image.name.c_str(),
                              value.status().message().c_str()));
    }
    Status st = memory.StoreU64(lib.got_addr + 8ull * slot, *value);
    if (!st.ok()) {
      rollback();
      return st;
    }
  }

  for (const auto& fixup : image.fixups) {
    std::uint64_t value;
    if (fixup.internal) {
      value = base + fixup.target_offset;
    } else {
      auto resolved = ns.Lookup(fixup.symbol);
      if (!resolved.ok()) {
        rollback();
        return resolved.status();
      }
      value = *resolved + static_cast<std::uint64_t>(fixup.addend);
    }
    Status st = memory.StoreU64(base + fixup.image_offset, value);
    if (!st.ok()) {
      rollback();
      return st;
    }
  }

  // Seal section permissions: text RX, rodata R, GOT RW|R, data RW.
  if (options.enforce_section_permissions) {
    TC_RETURN_IF_ERROR(
        memory.Protect(base, image.rodata_offset, mem::Perm::kRX));
    if (image.got_offset > image.rodata_offset) {
      TC_RETURN_IF_ERROR(memory.Protect(base + image.rodata_offset,
                                        image.got_offset - image.rodata_offset,
                                        mem::Perm::kRead));
    }
    const std::uint64_t got_span = image.data_offset - image.got_offset;
    if (got_span > 0) {
      TC_RETURN_IF_ERROR(memory.Protect(
          base + image.got_offset, got_span,
          options.got_read_only ? mem::Perm::kRead : mem::Perm::kRW));
    }
    if (image.total_size > image.data_offset) {
      TC_RETURN_IF_ERROR(memory.Protect(base + image.data_offset,
                                        image.total_size - image.data_offset,
                                        mem::Perm::kRW));
    }
  }

  return lib;
}

Status RebindGot(mem::HostMemory& memory, const LoadedLibrary& lib,
                 const HostNamespace& ns) {
  if (lib.got_slots == 0) return Status::Ok();
  // The GOT may have been sealed read-only; lift and restore around the
  // rebinding (what a real loader does with mprotect during lazy updates).
  TC_ASSIGN_OR_RETURN(const mem::Perm old_perm,
                      memory.PagePerms(lib.got_addr));
  TC_RETURN_IF_ERROR(
      memory.Protect(lib.got_addr, 8ull * lib.got_slots, mem::Perm::kRW));
  Status result = Status::Ok();
  for (std::uint32_t slot = 0; slot < lib.got_slots; ++slot) {
    auto value = ns.Lookup(lib.got_symbols[slot]);
    if (!value.ok()) {
      result = value.status();
      break;
    }
    Status st = memory.StoreU64(lib.got_addr + 8ull * slot, *value);
    if (!st.ok()) {
      result = st;
      break;
    }
  }
  TC_RETURN_IF_ERROR(
      memory.Protect(lib.got_addr, 8ull * lib.got_slots, old_perm));
  return result;
}

}  // namespace twochains::jelf
