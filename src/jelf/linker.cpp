#include "jelf/linker.hpp"

#include <cstring>
#include <map>

#include "common/bitops.hpp"
#include "common/strfmt.hpp"
#include "jamvm/isa.hpp"
#include "mem/address.hpp"

namespace twochains::jelf {
namespace {

struct Placement {
  std::uint64_t text = 0;
  std::uint64_t rodata = 0;  // within merged rodata (pre-offset)
  std::uint64_t data = 0;
};

std::uint64_t SectionAlign(vm::SectionKind kind) {
  switch (kind) {
    case vm::SectionKind::kText: return 8;
    case vm::SectionKind::kRodata: return 16;
    case vm::SectionKind::kData: return 8;
  }
  return 8;
}

}  // namespace

StatusOr<LinkedImage> Link(std::span<const vm::ObjectCode> objects,
                           const LinkOptions& options) {
  if (objects.empty()) return InvalidArgument("no objects to link");

  LinkedImage image;
  image.name = options.image_name;
  image.page_aligned = options.page_align_sections;

  // ---- 1. merge sections, remembering per-object placements ----------
  std::vector<Placement> place(objects.size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const auto& obj = objects[i];
    if (obj.text.size() % vm::kInstrBytes != 0) {
      return DataLoss(StrFormat("%s: text size not instruction aligned",
                                obj.source_name.c_str()));
    }
    if (options.forbid_writable_data && !obj.data.empty()) {
      return InvalidArgument(
          StrFormat("%s: writable .data is not allowed in a jam "
                    "(jams are stateless mobile code)",
                    obj.source_name.c_str()));
    }
    auto pad = [](std::vector<std::uint8_t>& v, std::uint64_t align) {
      while (v.size() % align != 0) v.push_back(0);
    };
    pad(image.text, SectionAlign(vm::SectionKind::kText));
    place[i].text = image.text.size();
    image.text.insert(image.text.end(), obj.text.begin(), obj.text.end());

    pad(image.rodata, SectionAlign(vm::SectionKind::kRodata));
    place[i].rodata = image.rodata.size();
    image.rodata.insert(image.rodata.end(), obj.rodata.begin(),
                        obj.rodata.end());

    pad(image.data, SectionAlign(vm::SectionKind::kData));
    place[i].data = image.data.size();
    image.data.insert(image.data.end(), obj.data.begin(), obj.data.end());
  }

  // ---- 2. layout ------------------------------------------------------
  const std::uint64_t align =
      options.page_align_sections ? mem::kPageSize : 16;
  image.rodata_offset = AlignUp(image.text.size(), align);
  image.got_offset = AlignUp(image.rodata_offset + image.rodata.size(), align);

  // ---- 3. resolve symbols ---------------------------------------------
  // Global symbols resolve across objects; local symbols resolve only
  // within their own object (two objects may both define a local ".loop").
  auto image_offset_of = [&](std::size_t obj_idx,
                             const vm::Symbol& sym) -> std::uint64_t {
    switch (sym.section) {
      case vm::SectionKind::kText:
        return place[obj_idx].text + sym.offset;
      case vm::SectionKind::kRodata:
        return image.rodata_offset + place[obj_idx].rodata + sym.offset;
      case vm::SectionKind::kData:
        // data offset depends on GOT size; patched below once known. Store
        // the pre-offset; marker handled via section check later.
        return place[obj_idx].data + sym.offset;
    }
    return 0;
  };

  // GOT slots must be assigned before data_offset is known, and data
  // symbols' image offsets depend on data_offset. Handle by recording the
  // section alongside the offset and materializing late.
  struct PendingDef {
    std::uint64_t raw_offset;
    vm::SectionKind section;
    vm::SymbolKind kind;
    bool global;
  };
  std::map<std::string, PendingDef> global_defs;
  std::vector<std::map<std::string, PendingDef>> local_defs(objects.size());

  for (std::size_t i = 0; i < objects.size(); ++i) {
    for (const auto& sym : objects[i].symbols) {
      if (!sym.defined) continue;
      PendingDef def{image_offset_of(i, sym), sym.section, sym.kind,
                     sym.global};
      if (sym.global) {
        if (global_defs.contains(sym.name)) {
          return AlreadyExists(StrFormat("duplicate symbol '%s' (in %s)",
                                         sym.name.c_str(),
                                         objects[i].source_name.c_str()));
        }
        global_defs.emplace(sym.name, def);
      } else {
        local_defs[i].emplace(sym.name, def);
      }
    }
  }

  // ---- 4. assign GOT slots ---------------------------------------------
  std::map<std::string, std::uint32_t> got_index;
  for (const auto& obj : objects) {
    for (const auto& reloc : obj.relocs) {
      if (reloc.kind != vm::RelocKind::kGotSlot) continue;
      if (!got_index.contains(reloc.symbol)) {
        got_index.emplace(reloc.symbol,
                          static_cast<std::uint32_t>(image.got_symbols.size()));
        image.got_symbols.push_back(reloc.symbol);
      }
    }
  }
  const std::uint64_t got_bytes = image.got_symbols.size() * 8ull;
  image.data_offset = AlignUp(image.got_offset + got_bytes, align);
  image.total_size =
      AlignUp(image.data_offset + image.data.size(),
              options.page_align_sections ? mem::kPageSize : 8);
  if (image.data.empty()) {
    image.total_size = AlignUp(
        image.data_offset, options.page_align_sections ? mem::kPageSize : 8);
  }

  auto materialize = [&](const PendingDef& def) -> std::uint64_t {
    if (def.section == vm::SectionKind::kData) {
      return image.data_offset + def.raw_offset;
    }
    return def.raw_offset;
  };

  auto resolve = [&](std::size_t obj_idx,
                     const std::string& name) -> const PendingDef* {
    const auto local_it = local_defs[obj_idx].find(name);
    if (local_it != local_defs[obj_idx].end()) return &local_it->second;
    const auto global_it = global_defs.find(name);
    if (global_it != global_defs.end()) return &global_it->second;
    return nullptr;
  };

  // ---- 5. apply relocations --------------------------------------------
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const auto& obj = objects[i];
    for (const auto& reloc : obj.relocs) {
      switch (reloc.kind) {
        case vm::RelocKind::kPcrel32: {
          if (reloc.section != vm::SectionKind::kText) {
            return InvalidArgument("pcrel32 outside .text");
          }
          const std::uint64_t site = place[i].text + reloc.offset;
          const PendingDef* def = resolve(i, reloc.symbol);
          if (def == nullptr) {
            return NotFound(StrFormat(
                "%s: PC-relative reference to undefined symbol '%s' — "
                "external symbols must be accessed through the GOT (ldg)",
                obj.source_name.c_str(), reloc.symbol.c_str()));
          }
          const std::int64_t delta =
              static_cast<std::int64_t>(materialize(*def)) + reloc.addend -
              static_cast<std::int64_t>(site);
          if (delta < INT32_MIN || delta > INT32_MAX) {
            return OutOfRange("pcrel32 overflow");
          }
          const auto imm = static_cast<std::int32_t>(delta);
          std::memcpy(image.text.data() + site + 4, &imm, sizeof(imm));
          break;
        }
        case vm::RelocKind::kGotSlot: {
          const std::uint64_t site = place[i].text + reloc.offset;
          const std::uint32_t slot = got_index.at(reloc.symbol);
          const std::int64_t delta =
              static_cast<std::int64_t>(image.got_offset + slot * 8ull) -
              static_cast<std::int64_t>(site);
          if (delta < INT32_MIN || delta > INT32_MAX) {
            return OutOfRange("got pcrel overflow");
          }
          const auto imm = static_cast<std::int32_t>(delta);
          std::memcpy(image.text.data() + site + 4, &imm, sizeof(imm));
          break;
        }
        case vm::RelocKind::kAbs64: {
          std::uint64_t site;
          switch (reloc.section) {
            case vm::SectionKind::kText:
              site = place[i].text + reloc.offset;
              break;
            case vm::SectionKind::kRodata:
              site = image.rodata_offset + place[i].rodata + reloc.offset;
              break;
            case vm::SectionKind::kData:
              site = image.data_offset + place[i].data + reloc.offset;
              break;
            default:
              return Internal("bad reloc section");
          }
          LoadFixup fixup;
          fixup.image_offset = site;
          const PendingDef* def = resolve(i, reloc.symbol);
          if (def != nullptr) {
            fixup.internal = true;
            fixup.target_offset =
                materialize(*def) + static_cast<std::uint64_t>(reloc.addend);
          } else {
            fixup.internal = false;
            fixup.symbol = reloc.symbol;
            fixup.addend = reloc.addend;
          }
          image.fixups.push_back(std::move(fixup));
          break;
        }
      }
    }
  }

  // ---- 6. exports -------------------------------------------------------
  for (const auto& [name, def] : global_defs) {
    image.exports.emplace(name, ExportEntry{materialize(def), def.kind});
  }

  return image;
}

}  // namespace twochains::jelf
