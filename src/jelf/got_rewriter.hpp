// The static GOT rewrite — the binary transformation at the heart of the
// paper's remote-linking mechanism (§III-B):
//
//   "At compile time, the binary is modified so that all references to the
//    global offset table (GOT) will redirect through a pointer stored a
//    fixed PC-relative location that we choose."
//
// Concretely: every `ldg.fix rd, imm` (a PC-relative load from the image's
// own GOT, the -fPIC -fno-plt idiom) is rewritten into
// `ldg.pre rd, slot, imm'`, which loads a GOT *pointer* from a preamble
// slot at a fixed offset before the code start and indexes it with the
// slot number. After the rewrite, the code no longer cares where its GOT
// lives — the sender packs a patched GOT (GOTP) into the message, or, in
// the hardened configuration, the receiver installs a pointer to its own
// securely built table on arrival.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "jelf/image.hpp"
#include "mem/host_memory.hpp"

namespace twochains::jelf {

/// Byte offset of the preamble GOT-pointer slot relative to the start of
/// the code blob ("the GOT redirect is located just before the code in the
/// message", §III-B). The frame codec places the PRE slot here.
inline constexpr std::int64_t kPreambleSlotOffset = -16;

struct RewriteStats {
  std::uint32_t rewritten = 0;  ///< ldg.fix instructions converted
};

/// Rewrites @p image's text in place. Fails if any GOT slot index exceeds
/// 255 (the ldg.pre index field) or an ldg.fix does not point into the
/// image's GOT.
StatusOr<RewriteStats> RewriteGotAccesses(LinkedImage& image);

/// True if the image's text contains no ldg.fix (i.e. it is safe to inject:
/// all GOT accesses go through the preamble pointer).
bool IsFullyRewritten(const LinkedImage& image);

// --- Receiver-side jam cache support ----------------------------------
//
// A cached jam image is a receiver-resident copy of the frame's linked
// prefix — [GOTP][pad][PRE][CODE] — laid out so the rewritten code's
// pc-relative preamble load (kPreambleSlotOffset) works unchanged. Once
// linked, a slim invoke-by-handle frame only has to name it by content
// hash: the hit cost is a PRE-slot validation instead of a full GOTP pack
// + rewrite-era link on every invoke (the DBI code-cache move: translate
// and link once, dispatch from the cache).

/// A receiver-resident, pre-linked jam image.
struct CachedJamImage {
  mem::VirtAddr base = 0;       ///< allocation start (== gotp_addr)
  std::uint64_t size = 0;       ///< total allocation bytes
  mem::VirtAddr gotp_addr = 0;  ///< patched GOT table
  mem::VirtAddr pre_addr = 0;   ///< preamble slot (code_addr - 16)
  mem::VirtAddr code_addr = 0;  ///< start of the code+rodata blob
  std::uint32_t got_slots = 0;
  std::uint64_t code_size = 0;
};

/// Content handle for a jam: FNV-1a 64 over the code+rodata blob and the
/// GOT shape (slot count + symbol names, in slot order). Sender and
/// receiver compute it independently from content, so a stale or mismatched
/// image can never be addressed by accident.
std::uint64_t ComputeJamHandle(std::span<const std::uint8_t> code,
                               std::span<const std::string> got_symbols);

/// Links @p code with @p gotp_values into a fresh receiver-side allocation
/// laid out exactly like the frame prefix (GOTP, then the PRE slot 16 bytes
/// before the code). The PRE slot is pointed at the embedded GOTP table.
/// Pages are RWX like mailbox banks (the interpreter fetch path checks X).
StatusOr<CachedJamImage> LinkCachedImage(
    mem::HostMemory& memory, std::span<const std::uint64_t> gotp_values,
    std::span<const std::uint8_t> code, std::string_view tag,
    mem::DomainId domain_hint = 0);

/// The per-hit relink: validates the cached image and re-points its PRE
/// slot (at @p gotp_addr when nonzero, e.g. a sealed receiver-built GOT;
/// at the embedded GOTP table otherwise). This is the table-lookup-cost
/// replacement for the full per-invoke GOT rewrite.
Status RelinkCachedImage(mem::HostMemory& memory, const CachedJamImage& image,
                         mem::VirtAddr gotp_addr = 0);

/// Releases a cached image's allocation.
Status ReleaseCachedImage(mem::HostMemory& memory,
                          const CachedJamImage& image);

}  // namespace twochains::jelf
