// The static GOT rewrite — the binary transformation at the heart of the
// paper's remote-linking mechanism (§III-B):
//
//   "At compile time, the binary is modified so that all references to the
//    global offset table (GOT) will redirect through a pointer stored a
//    fixed PC-relative location that we choose."
//
// Concretely: every `ldg.fix rd, imm` (a PC-relative load from the image's
// own GOT, the -fPIC -fno-plt idiom) is rewritten into
// `ldg.pre rd, slot, imm'`, which loads a GOT *pointer* from a preamble
// slot at a fixed offset before the code start and indexes it with the
// slot number. After the rewrite, the code no longer cares where its GOT
// lives — the sender packs a patched GOT (GOTP) into the message, or, in
// the hardened configuration, the receiver installs a pointer to its own
// securely built table on arrival.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "jelf/image.hpp"

namespace twochains::jelf {

/// Byte offset of the preamble GOT-pointer slot relative to the start of
/// the code blob ("the GOT redirect is located just before the code in the
/// message", §III-B). The frame codec places the PRE slot here.
inline constexpr std::int64_t kPreambleSlotOffset = -16;

struct RewriteStats {
  std::uint32_t rewritten = 0;  ///< ldg.fix instructions converted
};

/// Rewrites @p image's text in place. Fails if any GOT slot index exceeds
/// 255 (the ldg.pre index field) or an ldg.fix does not point into the
/// image's GOT.
StatusOr<RewriteStats> RewriteGotAccesses(LinkedImage& image);

/// True if the image's text contains no ldg.fix (i.e. it is safe to inject:
/// all GOT accesses go through the preamble pointer).
bool IsFullyRewritten(const LinkedImage& image);

}  // namespace twochains::jelf
