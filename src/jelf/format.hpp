// JELF: the serialized object/library container (stand-in for ELF .o /
// .so files in the paper's toolchain). Two record types share a header:
//
//   magic "JELF" | version u16 | type u8 (0=object, 1=image) | payload
//
// Object payloads carry sections + symbols + relocations (assembler
// output); image payloads carry the linked layout + GOT symbol list +
// exports + fixups (linker output). Both round-trip byte-exactly, so
// packages can be "installed" to byte blobs and loaded elsewhere — which is
// exactly what a ried shipped to a remote host is.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "jelf/image.hpp"
#include "jamvm/program.hpp"

namespace twochains::jelf {

inline constexpr std::uint32_t kJelfMagic = 0x464C454Au;  // "JELF" LE
inline constexpr std::uint16_t kJelfVersion = 1;

std::vector<std::uint8_t> SerializeObject(const vm::ObjectCode& object);
StatusOr<vm::ObjectCode> ParseObject(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> SerializeImage(const LinkedImage& image);
StatusOr<LinkedImage> ParseImage(std::span<const std::uint8_t> bytes);

}  // namespace twochains::jelf
