// Static linker: ObjectCode units -> LinkedImage.
//
// Responsibilities (the subset of a real ELF linker that remote linking
// needs): section merging with alignment, symbol resolution across objects,
// GOT construction (one slot per symbol referenced through ldg), PC-relative
// patching, and conversion of absolute-address data relocations into
// load-time fixups.
//
// External references are only legal through the GOT (the toolchain's
// equivalent of -fno-plt); a PC-relative relocation against an undefined
// symbol is a link error, matching how the paper's pipeline forces every
// cross-library reference through GOT indirection so it can be rebound.
#pragma once

#include <span>
#include <string>

#include "common/status.hpp"
#include "jelf/image.hpp"
#include "jamvm/program.hpp"

namespace twochains::jelf {

struct LinkOptions {
  std::string image_name = "a.jso";
  /// Page-align sections so the loader can enforce W^X (ried libraries).
  bool page_align_sections = true;
  /// Forbid .data (jams must be stateless mobile code).
  bool forbid_writable_data = false;
};

/// Links @p objects into one image.
StatusOr<LinkedImage> Link(std::span<const vm::ObjectCode> objects,
                           const LinkOptions& options);

}  // namespace twochains::jelf
