#include "cache/hierarchy.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace twochains::cache {

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config)
    : config_(config) {
  assert(config_.cores >= 1);
  if (config_.domains == 0) config_.domains = 1;
  if (config_.domains > 1 &&
      config_.CoresPerDomain() % config_.cores_per_cluster != 0) {
    TC_WARN << "cache: a " << config_.cores_per_cluster
            << "-core cluster straddles the " << config_.domains
            << "-domain boundary (cores_per_domain="
            << config_.CoresPerDomain()
            << "); L3 sharing across domains is not modeled — expect "
               "cluster-local hits to read as domain-local";
  }
  const std::uint32_t clusters =
      (config_.cores + config_.cores_per_cluster - 1) /
      config_.cores_per_cluster;
  l1_.reserve(config_.cores);
  l2_.reserve(config_.cores);
  prefetchers_.reserve(config_.cores);
  for (std::uint32_t c = 0; c < config_.cores; ++c) {
    l1_.emplace_back(config_.l1, config_.line_bytes);
    l2_.emplace_back(config_.l2, config_.line_bytes);
    prefetchers_.emplace_back(config_.prefetch, config_.line_bytes);
  }
  l3_.reserve(clusters);
  for (std::uint32_t c = 0; c < clusters; ++c) {
    l3_.emplace_back(config_.l3, config_.line_bytes);
  }
  // The LLC is physically distributed across domains: each slice holds the
  // lines homed in its domain, with the total capacity split evenly —
  // then rounded down so the slice keeps the power-of-two set count
  // CacheLevel requires (a 3-domain split of an 8 MiB LLC would
  // otherwise produce a non-power-of-two geometry).
  LevelConfig slice = config_.llc;
  const std::uint64_t way_bytes = config_.line_bytes * slice.ways;
  const std::uint64_t sets = std::bit_floor(std::max<std::uint64_t>(
      config_.llc.size_bytes / config_.domains / way_bytes, 1));
  slice.size_bytes = sets * way_bytes;
  llc_.reserve(config_.domains);
  for (std::uint32_t d = 0; d < config_.domains; ++d) {
    llc_.emplace_back(slice, config_.line_bytes);
  }
}

Cycles CacheHierarchy::AccessLine(std::uint32_t core, mem::VirtAddr addr,
                                  AccessKind kind, HitLevel* level) noexcept {
  (void)kind;  // loads, stores (write-allocate) and ifetch share the walk
  assert(core < config_.cores);
  const std::uint32_t cluster = ClusterOf(core);
  auto& l1 = l1_[core];
  auto& l2 = l2_[core];
  auto& l3 = l3_[cluster];

  if (l1.Lookup(addr)) {
    ++stats_.l1_hits;
    if (level) *level = HitLevel::kL1;
    return l1.hit_cycles();
  }
  if (l2.Lookup(addr)) {
    l1.Insert(addr);
    ++stats_.l2_hits;
    if (level) *level = HitLevel::kL2;
    return l2.hit_cycles();
  }

  // Past the core-private levels the line's home domain matters: a fill
  // from another domain's LLC slice or DRAM crosses the interconnect.
  const std::uint32_t home = HomeDomainOf(addr);
  const bool remote =
      config_.domains > 1 && home != config_.DomainOfCore(core);
  auto& llc = llc_[home];

  // L2 demand miss: the stream prefetcher sees every one of these and, once
  // trained, covers the fill regardless of whether the line would have come
  // from L3, LLC, or DRAM (the engine ran ahead of the demand stream — the
  // cross-domain hop is hidden with the rest of the fill latency).
  const bool covered = prefetchers_[core].OnDemandMiss(addr);
  if (covered) {
    l1.Insert(addr);
    l2.Insert(addr);
    llc.Insert(addr);  // prefetch fills percolate into the home slice
    ++stats_.prefetch_covered;
    if (level) *level = HitLevel::kPrefetchCovered;
    return config_.prefetch.covered_cycles;
  }

  if (l3.Lookup(addr)) {
    // A copy already resident in the cluster is local however far away the
    // line's home is — caching absorbs the NUMA hop after the first touch.
    l1.Insert(addr);
    l2.Insert(addr);
    ++stats_.l3_hits;
    if (level) *level = HitLevel::kL3;
    return l3.hit_cycles();
  }
  if (llc.Lookup(addr)) {
    l1.Insert(addr);
    l2.Insert(addr);
    l3.Insert(addr);
    ++stats_.llc_hits;
    if (level) *level = HitLevel::kLLC;
    Cycles cost = llc.hit_cycles();
    if (remote) {
      cost += config_.remote_penalty_cycles;
      ++stats_.remote_accesses;
      stats_.remote_penalty_cycles += config_.remote_penalty_cycles;
    }
    return cost;
  }

  // DRAM (the home domain's local memory).
  l1.Insert(addr);
  l2.Insert(addr);
  l3.Insert(addr);
  llc.Insert(addr);
  ++stats_.dram_accesses;
  if (level) *level = HitLevel::kDram;
  Cycles cost = config_.DramCycles();
  if (remote) {
    cost += config_.remote_penalty_cycles;
    ++stats_.remote_accesses;
    stats_.remote_penalty_cycles += config_.remote_penalty_cycles;
  }
  if (dram_contention_) cost += dram_contention_();
  return cost;
}

Cycles CacheHierarchy::Access(std::uint32_t core, mem::VirtAddr addr,
                              std::uint64_t size, AccessKind kind,
                              HitLevel* last_level) noexcept {
  if (size == 0) return 0;
  const std::uint64_t line = config_.line_bytes;
  const std::uint64_t first = AlignDown(addr, line);
  const std::uint64_t last = AlignUp(addr + size, line);
  Cycles total = 0;
  for (std::uint64_t a = first; a < last; a += line) {
    total += AccessLine(core, a, kind, last_level);
  }
  return total;
}

void CacheHierarchy::StashDeliver(mem::VirtAddr addr,
                                  std::uint64_t size) noexcept {
  if (size == 0) return;
  const std::uint64_t line = config_.line_bytes;
  const std::uint64_t first = AlignDown(addr, line);
  const std::uint64_t last = AlignUp(addr + size, line);
  for (std::uint64_t a = first; a < last; a += line) {
    // Upper-level copies are stale after the DMA write. The stash targets
    // the line's home domain's LLC slice — the cache closest to the cores
    // that own the bank when placement is domain-aware.
    for (auto& l1 : l1_) l1.Invalidate(a);
    for (auto& l2 : l2_) l2.Invalidate(a);
    for (auto& l3 : l3_) l3.Invalidate(a);
    llc_[HomeDomainOf(a)].Insert(a);
    ++stats_.stash_lines;
  }
}

void CacheHierarchy::DramDeliver(mem::VirtAddr addr,
                                 std::uint64_t size) noexcept {
  if (size == 0) return;
  const std::uint64_t line = config_.line_bytes;
  const std::uint64_t first = AlignDown(addr, line);
  const std::uint64_t last = AlignUp(addr + size, line);
  for (std::uint64_t a = first; a < last; a += line) {
    for (auto& l1 : l1_) l1.Invalidate(a);
    for (auto& l2 : l2_) l2.Invalidate(a);
    for (auto& l3 : l3_) l3.Invalidate(a);
    // Every slice, not just the home one: lines inserted before a domain
    // mapper was installed may sit in slice 0.
    for (auto& slice : llc_) slice.Invalidate(a);
    ++stats_.dma_invalidated_lines;
  }
}

void CacheHierarchy::Clear() noexcept {
  for (auto& c : l1_) c.Clear();
  for (auto& c : l2_) c.Clear();
  for (auto& c : l3_) c.Clear();
  for (auto& slice : llc_) slice.Clear();
  ResetPrefetchers();
}

void CacheHierarchy::ResetPrefetchers() noexcept {
  for (auto& p : prefetchers_) p.Reset();
}

bool CacheHierarchy::ProbeL1(std::uint32_t core, mem::VirtAddr addr) const {
  return l1_[core].Probe(addr);
}
bool CacheHierarchy::ProbeL2(std::uint32_t core, mem::VirtAddr addr) const {
  return l2_[core].Probe(addr);
}
bool CacheHierarchy::ProbeL3(std::uint32_t core, mem::VirtAddr addr) const {
  return l3_[ClusterOf(core)].Probe(addr);
}
bool CacheHierarchy::ProbeLLC(mem::VirtAddr addr) const {
  return llc_[HomeDomainOf(addr)].Probe(addr);
}

}  // namespace twochains::cache
