#include "cache/hierarchy.hpp"

#include <cassert>

#include "common/bitops.hpp"

namespace twochains::cache {

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config)
    : config_(config), llc_(config.llc, config.line_bytes) {
  assert(config_.cores >= 1);
  const std::uint32_t clusters =
      (config_.cores + config_.cores_per_cluster - 1) /
      config_.cores_per_cluster;
  l1_.reserve(config_.cores);
  l2_.reserve(config_.cores);
  prefetchers_.reserve(config_.cores);
  for (std::uint32_t c = 0; c < config_.cores; ++c) {
    l1_.emplace_back(config_.l1, config_.line_bytes);
    l2_.emplace_back(config_.l2, config_.line_bytes);
    prefetchers_.emplace_back(config_.prefetch, config_.line_bytes);
  }
  l3_.reserve(clusters);
  for (std::uint32_t c = 0; c < clusters; ++c) {
    l3_.emplace_back(config_.l3, config_.line_bytes);
  }
}

Cycles CacheHierarchy::AccessLine(std::uint32_t core, mem::VirtAddr addr,
                                  AccessKind kind, HitLevel* level) noexcept {
  (void)kind;  // loads, stores (write-allocate) and ifetch share the walk
  assert(core < config_.cores);
  const std::uint32_t cluster = ClusterOf(core);
  auto& l1 = l1_[core];
  auto& l2 = l2_[core];
  auto& l3 = l3_[cluster];

  if (l1.Lookup(addr)) {
    ++stats_.l1_hits;
    if (level) *level = HitLevel::kL1;
    return l1.hit_cycles();
  }
  if (l2.Lookup(addr)) {
    l1.Insert(addr);
    ++stats_.l2_hits;
    if (level) *level = HitLevel::kL2;
    return l2.hit_cycles();
  }

  // L2 demand miss: the stream prefetcher sees every one of these and, once
  // trained, covers the fill regardless of whether the line would have come
  // from L3, LLC, or DRAM (the engine ran ahead of the demand stream).
  const bool covered = prefetchers_[core].OnDemandMiss(addr);
  if (covered) {
    l1.Insert(addr);
    l2.Insert(addr);
    llc_.Insert(addr);  // prefetch fills percolate into the shared cache
    ++stats_.prefetch_covered;
    if (level) *level = HitLevel::kPrefetchCovered;
    return config_.prefetch.covered_cycles;
  }

  if (l3.Lookup(addr)) {
    l1.Insert(addr);
    l2.Insert(addr);
    ++stats_.l3_hits;
    if (level) *level = HitLevel::kL3;
    return l3.hit_cycles();
  }
  if (llc_.Lookup(addr)) {
    l1.Insert(addr);
    l2.Insert(addr);
    l3.Insert(addr);
    ++stats_.llc_hits;
    if (level) *level = HitLevel::kLLC;
    return llc_.hit_cycles();
  }

  // DRAM.
  l1.Insert(addr);
  l2.Insert(addr);
  l3.Insert(addr);
  llc_.Insert(addr);
  ++stats_.dram_accesses;
  if (level) *level = HitLevel::kDram;
  Cycles cost = config_.DramCycles();
  if (dram_contention_) cost += dram_contention_();
  return cost;
}

Cycles CacheHierarchy::Access(std::uint32_t core, mem::VirtAddr addr,
                              std::uint64_t size, AccessKind kind,
                              HitLevel* last_level) noexcept {
  if (size == 0) return 0;
  const std::uint64_t line = config_.line_bytes;
  const std::uint64_t first = AlignDown(addr, line);
  const std::uint64_t last = AlignUp(addr + size, line);
  Cycles total = 0;
  for (std::uint64_t a = first; a < last; a += line) {
    total += AccessLine(core, a, kind, last_level);
  }
  return total;
}

void CacheHierarchy::StashDeliver(mem::VirtAddr addr,
                                  std::uint64_t size) noexcept {
  if (size == 0) return;
  const std::uint64_t line = config_.line_bytes;
  const std::uint64_t first = AlignDown(addr, line);
  const std::uint64_t last = AlignUp(addr + size, line);
  for (std::uint64_t a = first; a < last; a += line) {
    // Upper-level copies are stale after the DMA write.
    for (auto& l1 : l1_) l1.Invalidate(a);
    for (auto& l2 : l2_) l2.Invalidate(a);
    for (auto& l3 : l3_) l3.Invalidate(a);
    llc_.Insert(a);
    ++stats_.stash_lines;
  }
}

void CacheHierarchy::DramDeliver(mem::VirtAddr addr,
                                 std::uint64_t size) noexcept {
  if (size == 0) return;
  const std::uint64_t line = config_.line_bytes;
  const std::uint64_t first = AlignDown(addr, line);
  const std::uint64_t last = AlignUp(addr + size, line);
  for (std::uint64_t a = first; a < last; a += line) {
    for (auto& l1 : l1_) l1.Invalidate(a);
    for (auto& l2 : l2_) l2.Invalidate(a);
    for (auto& l3 : l3_) l3.Invalidate(a);
    llc_.Invalidate(a);
    ++stats_.dma_invalidated_lines;
  }
}

void CacheHierarchy::Clear() noexcept {
  for (auto& c : l1_) c.Clear();
  for (auto& c : l2_) c.Clear();
  for (auto& c : l3_) c.Clear();
  llc_.Clear();
  ResetPrefetchers();
}

void CacheHierarchy::ResetPrefetchers() noexcept {
  for (auto& p : prefetchers_) p.Reset();
}

bool CacheHierarchy::ProbeL1(std::uint32_t core, mem::VirtAddr addr) const {
  return l1_[core].Probe(addr);
}
bool CacheHierarchy::ProbeL2(std::uint32_t core, mem::VirtAddr addr) const {
  return l2_[core].Probe(addr);
}
bool CacheHierarchy::ProbeL3(std::uint32_t core, mem::VirtAddr addr) const {
  return l3_[ClusterOf(core)].Probe(addr);
}
bool CacheHierarchy::ProbeLLC(mem::VirtAddr addr) const {
  return llc_.Probe(addr);
}

}  // namespace twochains::cache
