#include "cache/cache_level.hpp"

#include <cassert>

#include "common/bitops.hpp"

namespace twochains::cache {

CacheLevel::CacheLevel(const LevelConfig& config, std::uint64_t line_bytes)
    : line_bytes_(line_bytes),
      sets_(config.size_bytes / (line_bytes * config.ways)),
      ways_(config.ways),
      hit_cycles_(config.hit_cycles),
      tags_(sets_ * ways_, 0),
      valid_(sets_ * ways_, 0) {
  assert(IsPowerOfTwo(line_bytes_));
  assert(IsPowerOfTwo(sets_) && "size/(line*ways) must be a power of two");
}

bool CacheLevel::Lookup(mem::VirtAddr addr) noexcept {
  const std::uint64_t line = LineOf(addr);
  const std::uint64_t base = SetOf(line) * ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (valid_[base + w] && tags_[base + w] == line) {
      // Move to MRU position (front of the set slice).
      for (std::uint32_t i = w; i > 0; --i) {
        tags_[base + i] = tags_[base + i - 1];
        valid_[base + i] = valid_[base + i - 1];
      }
      tags_[base] = line;
      valid_[base] = 1;
      return true;
    }
  }
  return false;
}

bool CacheLevel::Probe(mem::VirtAddr addr) const noexcept {
  const std::uint64_t line = LineOf(addr);
  const std::uint64_t base = SetOf(line) * ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (valid_[base + w] && tags_[base + w] == line) return true;
  }
  return false;
}

void CacheLevel::Insert(mem::VirtAddr addr) noexcept {
  const std::uint64_t line = LineOf(addr);
  const std::uint64_t base = SetOf(line) * ways_;
  // Already present: refresh LRU only.
  if (Lookup(addr)) return;
  // Shift everything down one way; LRU (last way) falls out.
  for (std::uint32_t i = ways_ - 1; i > 0; --i) {
    tags_[base + i] = tags_[base + i - 1];
    valid_[base + i] = valid_[base + i - 1];
  }
  tags_[base] = line;
  valid_[base] = 1;
}

bool CacheLevel::Invalidate(mem::VirtAddr addr) noexcept {
  const std::uint64_t line = LineOf(addr);
  const std::uint64_t base = SetOf(line) * ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (valid_[base + w] && tags_[base + w] == line) {
      // Compact the set so valid entries stay contiguous in LRU order.
      for (std::uint32_t i = w; i + 1 < ways_; ++i) {
        tags_[base + i] = tags_[base + i + 1];
        valid_[base + i] = valid_[base + i + 1];
      }
      valid_[base + ways_ - 1] = 0;
      return true;
    }
  }
  return false;
}

void CacheLevel::InvalidateRange(mem::VirtAddr addr,
                                 std::uint64_t size) noexcept {
  if (size == 0) return;
  const std::uint64_t first = AlignDown(addr, line_bytes_);
  const std::uint64_t last = AlignUp(addr + size, line_bytes_);
  for (std::uint64_t a = first; a < last; a += line_bytes_) Invalidate(a);
}

void CacheLevel::Clear() noexcept {
  std::fill(valid_.begin(), valid_.end(), 0);
}

std::uint64_t CacheLevel::PopulationCount() const noexcept {
  std::uint64_t n = 0;
  for (const auto v : valid_) n += v;
  return n;
}

}  // namespace twochains::cache
