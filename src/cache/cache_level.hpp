// A single set-associative, LRU cache level (tag array only — the simulator
// keeps data in HostMemory; caches model *where* bytes live, not the bytes).
#pragma once

#include <cstdint>
#include <vector>

#include "cache/config.hpp"
#include "mem/address.hpp"

namespace twochains::cache {

class CacheLevel {
 public:
  /// @p line_bytes must be a power of two; size must be a multiple of
  /// ways*line_bytes.
  CacheLevel(const LevelConfig& config, std::uint64_t line_bytes);

  /// True (and LRU-updates) if the line containing @p addr is present.
  bool Lookup(mem::VirtAddr addr) noexcept;

  /// Presence check without LRU side effects (for tests).
  bool Probe(mem::VirtAddr addr) const noexcept;

  /// Installs the line containing @p addr, evicting LRU if the set is full.
  void Insert(mem::VirtAddr addr) noexcept;

  /// Drops the line containing @p addr if present. Returns true if dropped.
  bool Invalidate(mem::VirtAddr addr) noexcept;

  /// Invalidates every line intersecting [addr, addr+size).
  void InvalidateRange(mem::VirtAddr addr, std::uint64_t size) noexcept;

  /// Drops everything (tests / benchmark cold-start).
  void Clear() noexcept;

  Cycles hit_cycles() const noexcept { return hit_cycles_; }
  std::uint64_t sets() const noexcept { return sets_; }
  std::uint32_t ways() const noexcept { return ways_; }

  /// Number of currently valid lines (tests).
  std::uint64_t PopulationCount() const noexcept;

 private:
  std::uint64_t LineOf(mem::VirtAddr addr) const noexcept {
    return addr / line_bytes_;
  }
  std::uint64_t SetOf(std::uint64_t line) const noexcept {
    return line & (sets_ - 1);
  }

  // Each set is a contiguous slice of `ways_` entries in tags_/valid_,
  // ordered most-recently-used first.
  std::uint64_t line_bytes_;
  std::uint64_t sets_;
  std::uint32_t ways_;
  Cycles hit_cycles_;
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint8_t> valid_;
};

}  // namespace twochains::cache
