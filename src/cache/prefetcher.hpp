// Per-core stream prefetcher model.
//
// Detects runs of consecutive-line demand misses. Once a stream has seen
// `train_misses` consecutive lines, subsequent accesses on the stream are
// "covered": the prefetch engine fetched them ahead of use, so the demand
// access pays only the covered cost instead of LLC/DRAM latency. This is the
// mechanism behind the paper's observation that the stash/non-stash latency
// gap narrows "once the message size is large enough to trigger the
// prefetcher" (§VII-B).
#pragma once

#include <cstdint>
#include <vector>

#include "cache/config.hpp"
#include "mem/address.hpp"

namespace twochains::cache {

class StreamPrefetcher {
 public:
  explicit StreamPrefetcher(const PrefetcherConfig& config,
                            std::uint64_t line_bytes);

  /// Reports an L2 demand miss on the line containing @p addr. Returns true
  /// if a trained stream covers this line (the fill was prefetched). Always
  /// updates training state.
  bool OnDemandMiss(mem::VirtAddr addr) noexcept;

  /// Forgets all streams (context switch / new message region).
  void Reset() noexcept;

  std::uint64_t covered_count() const noexcept { return covered_; }
  std::uint64_t trained_streams_formed() const noexcept { return trained_; }

 private:
  struct Stream {
    std::uint64_t next_line = 0;  // expected next miss line
    std::uint32_t run = 0;        // consecutive lines observed
    std::uint64_t lru = 0;        // age stamp for replacement
    bool live = false;
  };

  PrefetcherConfig config_;
  std::uint64_t line_bytes_;
  std::vector<Stream> streams_;
  std::uint64_t tick_ = 0;
  std::uint64_t covered_ = 0;
  std::uint64_t trained_ = 0;
};

}  // namespace twochains::cache
