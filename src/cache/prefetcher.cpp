#include "cache/prefetcher.hpp"

namespace twochains::cache {

StreamPrefetcher::StreamPrefetcher(const PrefetcherConfig& config,
                                   std::uint64_t line_bytes)
    : config_(config),
      line_bytes_(line_bytes),
      streams_(config.streams) {}

bool StreamPrefetcher::OnDemandMiss(mem::VirtAddr addr) noexcept {
  if (!config_.enabled) return false;
  const std::uint64_t line = addr / line_bytes_;
  ++tick_;

  // Look for a stream expecting exactly this line.
  for (auto& s : streams_) {
    if (s.live && s.next_line == line) {
      s.run += 1;
      s.next_line = line + 1;
      s.lru = tick_;
      if (s.run == config_.train_misses) ++trained_;
      if (s.run >= config_.train_misses) {
        ++covered_;
        return true;  // prefetch engine ran ahead of the demand stream
      }
      return false;  // still warming up
    }
  }

  // New stream: replace the least recently used slot.
  Stream* victim = &streams_[0];
  for (auto& s : streams_) {
    if (!s.live) {
      victim = &s;
      break;
    }
    if (s.lru < victim->lru) victim = &s;
  }
  victim->live = true;
  victim->next_line = line + 1;
  victim->run = 1;
  victim->lru = tick_;
  return false;
}

void StreamPrefetcher::Reset() noexcept {
  for (auto& s : streams_) s.live = false;
  tick_ = 0;
}

}  // namespace twochains::cache
