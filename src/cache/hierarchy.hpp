// The full memory hierarchy of one simulated host.
//
// Private L1/L2 per core, L3 shared per 2-core cluster, one LLC shared by
// all cores, DRAM behind it. Every CPU access (instruction fetch, load,
// store) walks the hierarchy, pays the latency of the level that hits, and
// installs the line upward — so code and data that arrived over the network
// are hot or cold depending on how the NIC delivered them:
//
//   * stash delivery  -> lines installed in the LLC (upper levels
//                        invalidated): post-arrival fetches pay LLC latency;
//   * DRAM delivery   -> lines invalidated everywhere: post-arrival fetches
//                        pay DRAM latency until the stream prefetcher trains.
//
// This asymmetry is the entire mechanism behind Figures 9-12 of the paper.
//
// With HierarchyConfig.domains > 1 the LLC is physically distributed: one
// slice per memory domain, and a line is cached in the slice of its *home*
// domain (where its bytes live in the host arena, resolved through the
// domain mapper the owning net::Host installs). An access that must be
// satisfied by a remote domain's slice or DRAM pays remote_penalty_cycles
// on top — the cross-socket hop — while copies already resident in the
// core's private/cluster levels stay free. NIC stash delivery therefore
// lands in the home domain's slice, which is what makes bank placement a
// measurable axis (fig17).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cache/cache_level.hpp"
#include "cache/config.hpp"
#include "cache/prefetcher.hpp"
#include "mem/address.hpp"

namespace twochains::cache {

/// Hit/miss counters, one instance per hierarchy.
struct HierarchyStats {
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l3_hits = 0;
  std::uint64_t llc_hits = 0;
  std::uint64_t prefetch_covered = 0;
  std::uint64_t dram_accesses = 0;
  std::uint64_t stash_lines = 0;
  std::uint64_t dma_invalidated_lines = 0;
  /// Accesses satisfied by another domain's LLC slice or DRAM.
  std::uint64_t remote_accesses = 0;
  /// Total cross-domain penalty cycles those accesses paid.
  std::uint64_t remote_penalty_cycles = 0;

  std::uint64_t TotalAccesses() const noexcept {
    return l1_hits + l2_hits + l3_hits + llc_hits + prefetch_covered +
           dram_accesses;
  }
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const HierarchyConfig& config);

  const HierarchyConfig& config() const noexcept { return config_; }

  /// CPU access from @p core touching [addr, addr+size). Returns total
  /// latency in core cycles (per-line walk; the level that hits also
  /// reports through @p last_level when non-null, for tests).
  Cycles Access(std::uint32_t core, mem::VirtAddr addr, std::uint64_t size,
                AccessKind kind, HitLevel* last_level = nullptr) noexcept;

  /// Single-line access fast path used by the interpreter (addr need not be
  /// aligned; only the containing line is charged).
  Cycles AccessLine(std::uint32_t core, mem::VirtAddr addr, AccessKind kind,
                    HitLevel* level = nullptr) noexcept;

  /// Inbound-DMA delivery with LLC stashing: installs every line of
  /// [addr,+size) into its home domain's LLC slice and invalidates
  /// upper-level copies.
  void StashDeliver(mem::VirtAddr addr, std::uint64_t size) noexcept;

  /// Inbound-DMA delivery to DRAM: invalidates every level (next CPU touch
  /// misses all the way down).
  void DramDeliver(mem::VirtAddr addr, std::uint64_t size) noexcept;

  /// Per-DRAM-access extra cost (core cycles), used by the interference
  /// model to inject memory-bandwidth contention. Called once per DRAM
  /// access; may be stochastic.
  void SetDramContentionHook(std::function<Cycles()> hook) {
    dram_contention_ = std::move(hook);
  }

  /// Resolves an address to its home memory domain (the owning net::Host
  /// wires this to mem::HostMemory::DomainOf). Without a mapper every
  /// address homes in domain 0 — the single-socket behavior.
  void SetDomainMapper(std::function<std::uint32_t(mem::VirtAddr)> mapper) {
    domain_mapper_ = std::move(mapper);
  }

  /// Home domain of @p addr (clamped to the configured domain count).
  std::uint32_t HomeDomainOf(mem::VirtAddr addr) const noexcept {
    if (!domain_mapper_) return 0;
    const std::uint32_t d = domain_mapper_(addr);
    const std::uint32_t n = static_cast<std::uint32_t>(llc_.size());
    return d < n ? d : n - 1;
  }

  /// Drops all cached state and prefetcher training (cold start).
  void Clear() noexcept;

  /// Drops only prefetcher training (e.g. between benchmark phases).
  void ResetPrefetchers() noexcept;

  const HierarchyStats& stats() const noexcept { return stats_; }
  void ResetStats() noexcept { stats_ = {}; }

  /// Test hooks: is this line present at the given level for this core?
  bool ProbeL1(std::uint32_t core, mem::VirtAddr addr) const;
  bool ProbeL2(std::uint32_t core, mem::VirtAddr addr) const;
  bool ProbeL3(std::uint32_t core, mem::VirtAddr addr) const;
  bool ProbeLLC(mem::VirtAddr addr) const;

 private:
  std::uint32_t ClusterOf(std::uint32_t core) const noexcept {
    return core / config_.cores_per_cluster;
  }

  HierarchyConfig config_;
  std::vector<CacheLevel> l1_;   // per core
  std::vector<CacheLevel> l2_;   // per core
  std::vector<CacheLevel> l3_;   // per cluster
  std::vector<CacheLevel> llc_;  // one slice per domain (1 = fully shared)
  std::vector<StreamPrefetcher> prefetchers_;  // per core
  std::function<Cycles()> dram_contention_;
  std::function<std::uint32_t(mem::VirtAddr)> domain_mapper_;
  HierarchyStats stats_;
};

}  // namespace twochains::cache
