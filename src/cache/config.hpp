// Geometry and latency configuration of the modeled memory hierarchy.
//
// Defaults reproduce the paper's testbed (§VI-C): 4-core Arm server,
// 1 MB dedicated L2 per core, 1 MB L3 shared per 2-core cluster, 8 MB shared
// LLC, DDR4-2666 DRAM, 64 B lines, core clock 2.6 GHz. Level hit latencies
// are modeled in core cycles; DRAM in nanoseconds (converted via the core
// clock). All values are data, so ablation benches can sweep them.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace twochains::cache {

/// One set-associative level.
struct LevelConfig {
  std::string name;
  std::uint64_t size_bytes = 0;
  std::uint32_t ways = 8;
  Cycles hit_cycles = 10;  ///< latency when the lookup hits at this level
};

/// Stream prefetcher knobs.
struct PrefetcherConfig {
  bool enabled = true;
  /// Consecutive-line misses needed before a stream counts as trained.
  std::uint32_t train_misses = 2;
  /// Concurrent streams tracked per core.
  std::uint32_t streams = 8;
  /// Cost of an access covered by a trained stream (data arrived in L2
  /// ahead of use; what remains is the L2-ish fill latency).
  Cycles covered_cycles = 14;
};

struct HierarchyConfig {
  std::uint32_t cores = 4;
  std::uint32_t cores_per_cluster = 2;
  std::uint64_t line_bytes = kCacheLineBytes;

  /// Memory domains (NUMA nodes): cores split into contiguous blocks of
  /// CoresPerDomain(), the LLC splits into one slice per domain (a line is
  /// cached in the slice of its *home* domain — where its bytes live in
  /// the host arena), and DRAM behind each slice is that domain's local
  /// memory. 1 = the paper's single-socket testbed.
  std::uint32_t domains = 1;
  /// Extra cycles when a core's access must be satisfied by another
  /// domain's LLC slice or DRAM (the cross-socket interconnect hop).
  /// Copies already resident in the core's private/cluster levels are
  /// local and never pay it.
  Cycles remote_penalty_cycles = 60;

  std::uint32_t CoresPerDomain() const noexcept {
    const std::uint32_t n = domains == 0 ? 1 : domains;
    return (cores + n - 1) / n;
  }
  /// The domain a core belongs to (contiguous blocks; clamped so every
  /// core maps somewhere even when cores % domains != 0).
  std::uint32_t DomainOfCore(std::uint32_t core) const noexcept {
    const std::uint32_t n = domains == 0 ? 1 : domains;
    const std::uint32_t d = core / CoresPerDomain();
    return d < n ? d : n - 1;
  }

  LevelConfig l1{"L1", KiB(64), 4, 2};
  LevelConfig l2{"L2", MiB(1), 8, 12};
  LevelConfig l3{"L3", MiB(1), 16, 30};
  LevelConfig llc{"LLC", MiB(8), 16, 55};

  /// Loaded DRAM access latency (nanoseconds) before contention.
  double dram_latency_ns = 88.0;

  /// Whether inbound network DMA deposits lines into the LLC (the paper's
  /// cache-stashing firmware toggle) or writes DRAM and invalidates.
  bool llc_stashing = true;

  PrefetcherConfig prefetch{};

  ClockDomain core_clock = kCoreClock;

  /// DRAM latency in core cycles.
  Cycles DramCycles() const noexcept {
    return core_clock.ToCycles(Nanoseconds(dram_latency_ns));
  }
};

/// Where an access was satisfied (for statistics and tests).
enum class HitLevel : std::uint8_t {
  kL1,
  kL2,
  kL3,
  kLLC,
  kPrefetchCovered,
  kDram,
};

/// Kind of access, for statistics; all kinds share the lookup path.
enum class AccessKind : std::uint8_t { kInstFetch, kLoad, kStore };

}  // namespace twochains::cache
