#include "cpu/spinwait.hpp"

namespace twochains::cpu {

void WaitStats::Record(PicoTime waited, const WaitOutcome& outcome) noexcept {
  ++episodes;
  idle_picos += waited;
  detection_picos += outcome.detection_delay;
  cycles_burned += outcome.cycles_burned;
}

WaitOutcome WaitModel::Wait(PicoTime wait_duration) const noexcept {
  WaitOutcome out;
  switch (config_.mode) {
    case WaitMode::kPoll: {
      // The loop re-checks every poll_iteration_cycles; the write becomes
      // visible partway through an iteration, so detection lands at the next
      // iteration boundary. Cycles burn for the full wait plus the final
      // check.
      const PicoTime iter = clock_.ToPicos(config_.poll_iteration_cycles);
      const PicoTime phase = iter == 0 ? 0 : wait_duration % iter;
      const PicoTime to_boundary = phase == 0 ? 0 : iter - phase;
      out.detection_delay = to_boundary;
      out.cycles_burned = clock_.ToCycles(wait_duration + to_boundary) +
                          config_.poll_iteration_cycles;
      break;
    }
    case WaitMode::kWfe: {
      // Arm the monitor, halt, wake on the DMA write to the monitored line.
      out.detection_delay = clock_.ToPicos(config_.wfe_wakeup_cycles);
      const std::uint64_t waited_us =
          wait_duration / kPicosPerMicro;
      out.cycles_burned = config_.wfe_entry_cycles +
                          config_.wfe_wakeup_cycles +
                          waited_us * config_.wfe_halted_cycles_per_us;
      break;
    }
  }
  return out;
}

}  // namespace twochains::cpu
