// Mailbox wait models: busy polling vs hardware-assisted sleep (Arm WFE).
//
// The Two-Chains receiver thread waits for a signal value to be written into
// its mailbox by the RDMA NIC. The paper deliberately avoids interrupts
// ("that would increase latency with Linux kernel scheduler activity") and
// instead compares:
//
//   * POLL — a spin loop re-reading the signal line. Detection happens at
//     the next loop-iteration boundary after the value becomes visible; the
//     core burns cycles for the entire wait.
//   * WFE  — the core arms an event monitor on the signal line and halts;
//     the DMA write to the monitored line wakes it. Detection pays a fixed
//     wake-up penalty, but the halted core consumes almost no cycles (the
//     cycle counter stops while in WFE, which is exactly why the paper's
//     full-run cycle counts drop by 2.5-3.8x with no latency loss).
//
// The model returns both the added latency and the cycles burned so the
// benchmark harness can reproduce Figures 13 and 14.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "cpu/core.hpp"

namespace twochains::cpu {

enum class WaitMode : std::uint8_t { kPoll, kWfe };

struct WaitModelConfig {
  WaitMode mode = WaitMode::kPoll;
  /// Cycles for one poll-loop iteration (cached load, compare, branch).
  Cycles poll_iteration_cycles = 10;
  /// Cycles from the monitored-line write until execution resumes after WFE
  /// (event propagation + pipeline restart).
  Cycles wfe_wakeup_cycles = 40;
  /// Cycles to arm the monitor and enter WFE (SEVL/WFE preamble).
  Cycles wfe_entry_cycles = 24;
  /// Residual cycle burn while waiting, per microsecond: the WFE loop is
  /// check/WFE/wake/re-check, and wakes fire on any monitor-line activity
  /// (evictions, timer events, global SEV), plus the runtime's progress
  /// path keeps ticking between sleeps — the core does not go fully dark.
  Cycles wfe_halted_cycles_per_us = 400;
};

/// Outcome of one wait episode.
struct WaitOutcome {
  /// Latency added beyond the instant the signal became visible.
  PicoTime detection_delay = 0;
  /// Cycles charged to the waiting core for the whole episode.
  Cycles cycles_burned = 0;
};

/// Accumulated idle/wakeup accounting for one waiter — with a pooled
/// receiver every core runs its own wait loop, so each keeps its own
/// ledger (the per-core analogue of the Figures 13/14 whole-run counts).
struct WaitStats {
  std::uint64_t episodes = 0;
  /// Simulated time spent idle before the signal became visible.
  PicoTime idle_picos = 0;
  /// Added detection latency (poll-boundary / WFE wake-up) summed.
  PicoTime detection_picos = 0;
  /// Cycles burned across all wait episodes.
  Cycles cycles_burned = 0;

  // Work-stealing ledger (filled by the pooled receiver when stealing is
  // enabled): instead of sleeping on empty banks, an idle waiter may claim
  // a backlogged sibling's bank, trading the stash locality its affinity
  // shard buys for utilization.
  /// Bank claims this waiter took over from a backlogged sibling.
  std::uint64_t banks_stolen = 0;
  /// Bank claims a sibling took over from this waiter.
  std::uint64_t banks_donated = 0;
  /// Frames this waiter executed from banks outside its affinity shard.
  std::uint64_t frames_stolen = 0;

  // NUMA ledger (filled by the pooled receiver on multi-domain hosts):
  // draining a bank homed in another memory domain — a stolen bank, or a
  // bank placed flat with placement off — pays the cross-domain hop on
  // every fill that reaches the remote LLC slice or DRAM.
  /// Frames this waiter drained from banks homed in another domain.
  std::uint64_t frames_drained_remote = 0;
  /// Cross-domain penalty cycles this waiter's drains paid.
  Cycles remote_drain_cycles = 0;

  // Hotplug ledger (filled by the pooled receiver around QuiesceCore /
  // ReviveCore): unlike a steal — a revertible lease — a re-shard is a
  // *permanent* home change, so both directions are counted per waiter.
  /// Times this waiter was quiesced (drained and taken out of the pool).
  std::uint64_t quiesces = 0;
  /// Bank homes migrated TO this waiter (quiesce re-shard or revive
  /// restore landing here).
  std::uint64_t banks_resharded_in = 0;
  /// Bank homes migrated AWAY from this waiter.
  std::uint64_t banks_resharded_out = 0;

  /// Folds one episode (idle for @p waited, resolved as @p outcome) in.
  void Record(PicoTime waited, const WaitOutcome& outcome) noexcept;
};

class WaitModel {
 public:
  WaitModel(const WaitModelConfig& config, ClockDomain clock) noexcept
      : config_(config), clock_(clock) {}

  const WaitModelConfig& config() const noexcept { return config_; }
  WaitMode mode() const noexcept { return config_.mode; }

  /// Models a wait episode in which the signal becomes visible
  /// @p wait_duration after the wait began.
  WaitOutcome Wait(PicoTime wait_duration) const noexcept;

 private:
  WaitModelConfig config_;
  ClockDomain clock_;
};

}  // namespace twochains::cpu
