// CPU core model: cycle accounting per activity class.
//
// The simulator charges work to cores in cycles; a core converts cycles to
// simulated time through its clock domain and keeps per-class counters so
// benchmarks can report, e.g., "cycles spent waiting for active messages"
// separately from execution — the quantity Figures 13/14 of the paper plot.
#pragma once

#include <array>
#include <cstdint>

#include "common/units.hpp"

namespace twochains::cpu {

/// What a span of cycles was spent on.
enum class CycleClass : std::uint8_t {
  kExecute = 0,   ///< running jam/runtime code
  kMemory,        ///< stalled on the memory hierarchy
  kWait,          ///< spinning / sleeping on a mailbox signal
  kPack,          ///< building message frames
  kCount,
};

struct PerfCounters {
  std::array<Cycles, static_cast<std::size_t>(CycleClass::kCount)> cycles{};
  std::uint64_t instructions = 0;
  std::uint64_t messages_handled = 0;

  Cycles Total() const noexcept {
    Cycles t = 0;
    for (const auto c : cycles) t += c;
    return t;
  }
  Cycles Of(CycleClass c) const noexcept {
    return cycles[static_cast<std::size_t>(c)];
  }
};

class CpuCore {
 public:
  CpuCore(std::uint32_t id, ClockDomain clock = kCoreClock) noexcept
      : id_(id), clock_(clock) {}

  std::uint32_t id() const noexcept { return id_; }
  const ClockDomain& clock() const noexcept { return clock_; }

  /// Records @p cycles of work in class @p cls; returns its duration.
  PicoTime Charge(Cycles cycles, CycleClass cls) noexcept {
    counters_.cycles[static_cast<std::size_t>(cls)] += cycles;
    return clock_.ToPicos(cycles);
  }

  void CountInstructions(std::uint64_t n) noexcept {
    counters_.instructions += n;
  }
  void CountMessage() noexcept { ++counters_.messages_handled; }

  const PerfCounters& counters() const noexcept { return counters_; }
  void ResetCounters() noexcept { counters_ = {}; }

 private:
  std::uint32_t id_;
  ClockDomain clock_;
  PerfCounters counters_;
};

}  // namespace twochains::cpu
