// Active-message frame layout and codec (Figures 1-3 of the paper).
//
// Injected Function frame:
//
//   +0      HDR   magic, flags, SN, FR_LEN, ELEM, ARGS_SIZE, USR_SIZE
//   +24     GOTP  patched GOT: 8 bytes per external symbol of the jam
//   ...     PRE   8-byte GOT pointer slot at (code_off - 16); the rewritten
//                 code loads it PC-relatively (jelf::kPreambleSlotOffset)
//   code_off      CODE: the jam's code+rodata blob (position independent)
//   args_off      ARGS: the invocation argument block
//   usr_off       USR : user payload
//   fr_len-8 SIG  signal word: (magic32 << 32) | SN
//
// Local Function frames drop GOTP/PRE/CODE (Fig. 3): the header's element
// ID selects the function from the receiver-resident library.
//
// Frames round up to the 64 B cache line; "messages are sized to the
// nearest 64B" (§VII-A). In fixed-size-frame mode (the paper's measurement
// configuration) the whole frame travels in one put and the receiver waits
// on the SIG word at a known offset. In variable mode the receiver first
// waits on the header magic, reads FR_LEN, then waits on SIG (§III-A).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "mem/address.hpp"

namespace twochains::core {

inline constexpr std::uint16_t kFrameMagic = 0x2C4A;     // "two-chains jam"
inline constexpr std::uint32_t kSignalMagic = 0x51C2C4Au;

/// Header flag bits.
enum FrameFlags : std::uint16_t {
  kFlagInjected = 1 << 0,     ///< GOTP/CODE sections present
  kFlagNoExecute = 1 << 1,    ///< deliver + signal but skip invocation
                              ///< (the paper's "without-execution" mode)
  kFlagReceiverGot = 1 << 2,  ///< ignore GOTP; receiver installs its own GOT
  kFlagByHandle = 1 << 3,     ///< slim invoke-by-handle frame: GOTP/CODE are
                              ///< dropped and a 64-bit content handle names
                              ///< the receiver's cached, pre-linked image
};

struct FrameHeader {
  std::uint16_t magic = kFrameMagic;
  std::uint16_t flags = 0;
  std::uint32_t sn = 0;
  std::uint32_t frame_len = 0;
  std::uint32_t elem_id = 0;
  std::uint32_t args_size = 0;
  std::uint32_t usr_size = 0;
};
inline constexpr std::uint64_t kHeaderBytes = 24;

/// Shape parameters from which a layout is computed.
struct FrameSpec {
  bool injected = false;
  std::uint32_t got_slots = 0;       ///< injected only
  std::uint64_t code_size = 0;       ///< injected only (code+rodata blob)
  std::uint64_t args_size = 0;
  std::uint64_t usr_size = 0;
  /// Pad so CODE and ARGS/USR live on distinct pages (the §V "separate the
  /// user data payload area" hardening; costs frame size).
  bool split_code_data = false;
  /// Invoke-by-handle: drop GOTP/CODE, carry an 8-byte content handle at
  /// kHeaderBytes instead. Mutually exclusive with `injected` on the wire
  /// (the jam is injected conceptually, but its body lives in the
  /// receiver's jam cache).
  bool by_handle = false;
};

struct FrameLayout {
  std::uint64_t gotp_off = 0;    ///< 0 if absent
  std::uint64_t pre_off = 0;     ///< GOT-pointer slot (code_off - 16)
  std::uint64_t code_off = 0;    ///< 0 if absent
  std::uint64_t handle_off = 0;  ///< 0 if absent (by-handle frames only)
  std::uint64_t args_off = 0;
  std::uint64_t usr_off = 0;
  std::uint64_t sig_off = 0;    ///< frame_len - 8
  std::uint64_t frame_len = 0;  ///< 64-byte multiple

  static FrameLayout Compute(const FrameSpec& spec);
};

/// The 64-bit signal word for sequence number @p sn.
constexpr std::uint64_t SignalWord(std::uint32_t sn) noexcept {
  return (static_cast<std::uint64_t>(kSignalMagic) << 32) | sn;
}

/// Serializes a header into @p out (>= kHeaderBytes).
void WriteHeader(const FrameHeader& header, std::span<std::uint8_t> out);

/// Parses + validates a header: magic, then self-consistency of the size
/// fields — frame_len must be a nonzero 64 B multiple that fits the header,
/// payload sections, and signal word, and (when @p slot_capacity is nonzero,
/// e.g. the receiving mailbox slot size) must not exceed the buffer the
/// frame claims to occupy. Rejecting here keeps a truncated or garbled
/// frame from ever reaching payload parsing.
StatusOr<FrameHeader> ReadHeader(std::span<const std::uint8_t> bytes,
                                 std::uint64_t slot_capacity = 0);

/// Builds a complete frame. Sizes in @p spec must match the spans. The PRE
/// slot is left zero — the sender patches it with the receiver-side GOTP
/// address once the target mailbox is known (or the receiver installs it in
/// the hardened mode).
StatusOr<std::vector<std::uint8_t>> PackFrame(
    const FrameSpec& spec, FrameHeader header,
    std::span<const std::uint64_t> gotp_values,
    std::span<const std::uint8_t> code, std::span<const std::uint8_t> args,
    std::span<const std::uint8_t> usr);

/// Builds a slim invoke-by-handle frame (spec.by_handle must be set): the
/// 64-bit content @p handle rides at kHeaderBytes in place of GOTP/CODE.
StatusOr<std::vector<std::uint8_t>> PackHandleFrame(
    const FrameSpec& spec, FrameHeader header, std::uint64_t handle,
    std::span<const std::uint8_t> args, std::span<const std::uint8_t> usr);

/// Reads the content handle out of a packed by-handle frame.
StatusOr<std::uint64_t> ReadHandle(std::span<const std::uint8_t> frame,
                                   const FrameHeader& header);

/// Writes @p value into the PRE slot of a packed frame.
Status PatchPreSlot(std::span<std::uint8_t> frame, const FrameLayout& layout,
                    std::uint64_t value);

}  // namespace twochains::core
