#include "core/runtime.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"
#include "common/strfmt.hpp"
#include "jamvm/verifier.hpp"

namespace twochains::core {

namespace {

/// Builds the contiguous injectable blob (text .. rodata, padded) from a
/// jam image — the CODE section of an Injected Function frame.
std::vector<std::uint8_t> CodeBlobOf(const jelf::LinkedImage& image) {
  std::vector<std::uint8_t> blob(image.code_blob_size(), 0);
  std::memcpy(blob.data(), image.text.data(), image.text.size());
  if (!image.rodata.empty()) {
    std::memcpy(blob.data() + image.rodata_offset, image.rodata.data(),
                image.rodata.size());
  }
  return blob;
}

}  // namespace

Runtime::Runtime(sim::Engine& engine, net::Host& host, net::Nic& nic,
                 ucxs::Worker& worker, RuntimeConfig config)
    : engine_(engine), host_(host), nic_(nic), worker_(worker),
      config_(std::move(config)) {}

Status Runtime::Initialize() {
  if (initialized_) return FailedPrecondition("already initialized");
  config_.exec.enforce_exec_permission =
      config_.security.enforce_exec_permission;

  // Receiver pool: cores receiver_core .. receiver_core+receiver_cores-1,
  // validated against the cache model's core count (the host builds one
  // cpu::CpuCore per cache::HierarchyConfig core, so a pool wider than
  // that would silently model cores the cache hierarchy does not have).
  // Each member gets its own wait model (its core's clock domain) and its
  // own execution stack so pool cores can execute jams concurrently in
  // simulated time.
  const std::uint32_t model_cores = host_.caches().config().cores;
  if (config_.receiver_cores == 0) config_.receiver_cores = 1;
  if (config_.receiver_core >= model_cores) {
    TC_WARN << "receiver_core " << config_.receiver_core
            << " out of range (cache model has " << model_cores
            << " cores); clamping to 0";
    config_.receiver_core = 0;
  }
  const std::uint32_t max_pool = model_cores - config_.receiver_core;
  if (config_.receiver_cores > max_pool) {
    TC_WARN << "receiver pool of " << config_.receiver_cores
            << " does not fit above core " << config_.receiver_core
            << " on a " << model_cores << "-core host; clamping to "
            << max_pool;
    config_.receiver_cores = max_pool;
  }
  if (config_.sender_core >= model_cores) {
    TC_WARN << "sender_core " << config_.sender_core
            << " out of range (cache model has " << model_cores
            << " cores); clamping to " << model_cores - 1;
    config_.sender_core = model_cores - 1;
  }
  // sender_core == receiver_core is the paper's deliberate single-threaded
  // perftest shape, but a *widened* pool swallowing the sender core is
  // almost certainly a misconfiguration: sends would double-book simulated
  // core time with a pool waiter and skew that core's counters.
  if (config_.receiver_cores > 1 &&
      config_.sender_core >= config_.receiver_core &&
      config_.sender_core < config_.receiver_core + config_.receiver_cores) {
    TC_WARN << "sender_core " << config_.sender_core
            << " lies inside the receiver pool [" << config_.receiver_core
            << ", " << config_.receiver_core + config_.receiver_cores
            << "); sends will share a core with a pool waiter — set "
               "sender_core outside the pool unless this is intentional";
  }
  // Steal config: resolve against the clamped pool width and bound the
  // trigger values so a bad config degrades to "no stealing" or
  // "steal on any backlog" instead of claim churn or a dead knob.
  stealing_active_ = config_.steal.enabled && config_.receiver_cores > 1;
  if (config_.steal.enabled && config_.receiver_cores == 1) {
    TC_WARN << "work stealing enabled on a 1-core receiver pool — nothing "
               "to steal from; disabling (no steal state allocated)";
  }
  if (stealing_active_ && config_.steal.threshold == 0) {
    TC_WARN << "steal threshold 0 would hand claims around with no work "
               "behind them; clamping to 1";
    config_.steal.threshold = 1;
  }
  // Oversized threshold/hysteresis clamp at steal time instead (see
  // EffectiveStealThreshold): the bound is the capacity across *all*
  // peers' slices, and the peer table only fills at Connect.

  // Jam cache: the miss NAK mask rides in bits [32, 64) of the bank flag
  // word, one bit per in-bank slot, so the bank shape must fit it.
  if (config_.jam_cache.enabled && config_.mailboxes_per_bank > 32) {
    TC_WARN << "jam cache needs mailboxes_per_bank <= 32 (NAK mask bits); "
               "clamping " << config_.mailboxes_per_bank << " to 32";
    config_.mailboxes_per_bank = 32;
  }
  if (config_.jam_cache.enabled && config_.jam_cache.capacity == 0) {
    TC_WARN << "jam cache capacity 0 could never install an image; "
               "clamping to 1";
    config_.jam_cache.capacity = 1;
  }

  // Adaptive bank flow control: clamp the window bounds so the AIMD loop
  // can neither deadlock (floor 0) nor freeze (no decrease / no recovery).
  if (config_.adaptive.enabled) {
    if (config_.adaptive.min_banks == 0) {
      TC_WARN << "adaptive min_banks 0 would let the window close entirely "
                 "(sender deadlock); clamping to 1";
      config_.adaptive.min_banks = 1;
    }
    if (config_.adaptive.min_banks > config_.banks) {
      TC_WARN << "adaptive min_banks " << config_.adaptive.min_banks
              << " exceeds the bank count; clamping to " << config_.banks;
      config_.adaptive.min_banks = config_.banks;
    }
    if (config_.adaptive.decrease_beta_milli >= 1000) {
      TC_WARN << "adaptive decrease_beta_milli "
              << config_.adaptive.decrease_beta_milli
              << " >= 1000 would never decrease (dead knob); clamping to 999";
      config_.adaptive.decrease_beta_milli = 999;
    }
    if (config_.adaptive.additive_increase_milli == 0) {
      TC_WARN << "adaptive additive_increase_milli 0 would never recover "
                 "after a decrease; clamping to 1";
      config_.adaptive.additive_increase_milli = 1;
    }
  }

  pool_.resize(config_.receiver_cores);
  claim_backlog_.assign(config_.receiver_cores, 0);
  for (std::uint32_t i = 0; i < config_.receiver_cores; ++i) {
    PoolCore& member = pool_[i];
    member.core_id = config_.receiver_core + i;
    member.wait_model = std::make_unique<cpu::WaitModel>(
        config_.wait, host_.core(member.core_id).clock());
    // The execution stack lives in the pool core's own memory domain so
    // jam locals never cross the interconnect (hint 0 = flat placement).
    const mem::DomainId stack_domain =
        config_.domain_aware_placement ? DomainOfPoolCore(i) : 0;
    TC_ASSIGN_OR_RETURN(
        const mem::VirtAddr stack,
        host_.memory().Allocate(KiB(256), 16, mem::Perm::kRW,
                                StrFormat("tc:recv-stack:c%u",
                                          member.core_id),
                                stack_domain));
    member.stack_top = stack + KiB(256);
  }

  TC_RETURN_IF_ERROR(
      vm::RegisterStandardNatives(natives_, {&print_sink_}));
  for (std::uint32_t i = 0; i < natives_.size(); ++i) {
    TC_RETURN_IF_ERROR(ns_.Define(std::string(natives_.NameOf(i)),
                                  vm::MakeNativeHandle(i)));
  }

  initialized_ = true;
  return Status::Ok();
}

StatusOr<PeerId> Runtime::AttachPeer(Runtime& remote) {
  const PeerId id = static_cast<PeerId>(peers_.size());
  auto& memory = host_.memory();
  const std::uint64_t mailbox_bytes =
      static_cast<std::uint64_t>(TotalSlots()) * config_.mailbox_slot_bytes;
  const std::uint64_t bank_bytes =
      static_cast<std::uint64_t>(config_.mailboxes_per_bank) *
      config_.mailbox_slot_bytes;
  const std::string suffix = StrFormat(":p%u", id);

  PeerState peer;
  peer.runtime = &remote;

  // Bank homes: the affinity owner, unless that member is quiesced right
  // now — a peer can connect mid-hotplug — in which case the bank starts
  // life on a survivor (ReviveCore later restores the affinity map).
  peer.bank_home.reserve(config_.banks);
  for (std::uint32_t b = 0; b < config_.banks; ++b) {
    const std::uint32_t affinity = PoolIndexFor(id, b);
    std::uint32_t home = affinity;
    if (pool_[affinity].state != PoolCoreState::kActive) {
      home = PickReshardTarget(DomainOfPoolCore(affinity));
      if (home == kInvalidPoolIndex) home = affinity;  // pre-StartReceiver
    }
    peer.bank_home.push_back(home);
  }
  peer.bank_pending_home.assign(config_.banks, kInvalidPoolIndex);

  // Reactive mailbox slice for this peer: pinned, remotely writable, and
  // (paper default) executable — "we ... mark all mailbox pages with read,
  // write, and execute permissions" (§III-A). One allocation + rkey per
  // bank, each placed in the memory domain of the pool core that owns the
  // bank, so the NIC's stash lands in the LLC slice next to the core that
  // will drain it (flat placement with the knob off: everything domain 0).
  peer.bank_base.reserve(config_.banks);
  peer.bank_rkey_own.reserve(config_.banks);
  for (std::uint32_t b = 0; b < config_.banks; ++b) {
    const mem::DomainId bank_domain =
        config_.domain_aware_placement
            ? DomainOfPoolCore(peer.bank_home[b])
            : 0;
    const std::string tag = StrFormat("tc:mailboxes:p%u:b%u", id, b);
    TC_ASSIGN_OR_RETURN(const mem::VirtAddr base,
                        memory.Allocate(bank_bytes, mem::kPageSize,
                                        mem::Perm::kRWX, tag, bank_domain));
    TC_ASSIGN_OR_RETURN(const mem::RKey rkey,
                        host_.regions().RegisterRegion(
                            base, bank_bytes, mem::RemoteAccess::kWrite,
                            tag));
    peer.bank_base.push_back(base);
    peer.bank_rkey_own.push_back(rkey);
  }

  // Sender-side bank flags for this peer, set remotely by its receiver;
  // the sender's core polls them, so they live in its domain.
  const mem::DomainId sender_domain =
      config_.domain_aware_placement
          ? host_.caches().config().DomainOfCore(config_.sender_core)
          : 0;
  TC_ASSIGN_OR_RETURN(peer.flag_base,
                      memory.Allocate(config_.banks * 8ull, 64,
                                      mem::Perm::kRW,
                                      "tc:bank-flags" + suffix,
                                      sender_domain));
  TC_ASSIGN_OR_RETURN(peer.flag_rkey_own,
                      host_.regions().RegisterRegion(
                          peer.flag_base, config_.banks * 8ull,
                          mem::RemoteAccess::kWrite,
                          "tc:bank-flags" + suffix));
  for (std::uint32_t b = 0; b < config_.banks; ++b) {
    TC_RETURN_IF_ERROR(memory.StoreU64(peer.flag_base + 8ull * b, 1));
  }
  peer.bank_open.assign(config_.banks, 1);
  peer.bank_owner_idle.assign(config_.banks, 1);

  // Send staging ring toward this peer (one slot per mailbox), packed by
  // the sender core — its domain.
  TC_ASSIGN_OR_RETURN(peer.staging_base,
                      memory.Allocate(mailbox_bytes, mem::kPageSize,
                                      mem::Perm::kRW, "tc:staging" + suffix,
                                      sender_domain));

  // One endpoint per peer, targeting the peer's NIC (kUser mode: the
  // runtime's own bank flow control, not UCX's).
  peer.endpoint = std::make_unique<ucxs::Endpoint>(
      worker_, ucxs::PutMode::kUser, &remote.nic_);

  peer.bank_cursor.assign(config_.banks, 0);
  // in_flight guards every handoff (steal and re-shard); ready feeds the
  // O(1) backlog ledger. Both always exist; only the steal-claim table is
  // gated on stealing.
  peer.bank_in_flight.assign(config_.banks, 0);
  peer.bank_ready.assign(config_.banks, 0);
  if (config_.jam_cache.enabled) {
    peer.bank_nak_mask.assign(config_.banks, 0);
  }
  if (stealing_active_) {
    // Claims start at the home owner.
    peer.bank_claim = peer.bank_home;
  }
  // Adaptive window state: starts wide open at the full bank budget.
  peer.cwnd_milli = static_cast<std::uint64_t>(config_.banks) * 1000;
  peer.cwnd_min_seen = peer.cwnd_milli;
  peer.cwnd_max_seen = peer.cwnd_milli;
  if (config_.adaptive.enabled) {
    peer.bank_close_at.assign(config_.banks, 0);
    peer.bank_ecn.assign(config_.banks, 0);
  }

  peers_.push_back(std::move(peer));
  stats_.per_peer.emplace_back();
  return id;
}

StatusOr<std::pair<PeerId, PeerId>> Runtime::Connect(Runtime& a, Runtime& b) {
  if (!a.initialized_ || !b.initialized_) {
    return FailedPrecondition("initialize both runtimes before connecting");
  }
  if (&a == &b) return InvalidArgument("cannot connect a runtime to itself");
  if (a.PeerIdOf(b) != kInvalidPeer) {
    return FailedPrecondition("runtimes already connected");
  }
  if (!a.nic_.CanReach(b.nic_)) {
    return FailedPrecondition(
        "NICs not reachable (net::Nic::ConnectTo or a switched uplink on "
        "both sides first)");
  }
  TC_ASSIGN_OR_RETURN(const PeerId id_of_b, a.AttachPeer(b));
  TC_ASSIGN_OR_RETURN(const PeerId id_of_a, b.AttachPeer(a));

  // Out-of-band address + rkey exchange (§V) — one window per mailbox
  // bank, since banks are placed (and registered) independently.
  PeerState& pa = a.peers_[id_of_b];
  PeerState& pb = b.peers_[id_of_a];
  pa.remote_id = id_of_a;
  pb.remote_id = id_of_b;
  pa.remote_bank_base = pb.bank_base;
  pa.remote_bank_rkey = pb.bank_rkey_own;
  pa.peer_flag_base = pb.flag_base;
  pa.peer_flag_rkey = pb.flag_rkey_own;
  pb.remote_bank_base = pa.bank_base;
  pb.remote_bank_rkey = pa.bank_rkey_own;
  pb.peer_flag_base = pa.flag_base;
  pb.peer_flag_rkey = pa.flag_rkey_own;
  return std::make_pair(id_of_b, id_of_a);
}

Status Runtime::Wire(Runtime& a, Runtime& b) {
  return Connect(a, b).status();
}

PeerId Runtime::PeerIdOf(const Runtime& other) const noexcept {
  for (PeerId i = 0; i < peers_.size(); ++i) {
    if (peers_[i].runtime == &other) return i;
  }
  return kInvalidPeer;
}

Status Runtime::LoadPackage(const pkg::Package& package, bool allow_reload) {
  if (!initialized_) return FailedPrecondition("not initialized");

  // Replace-in-place on reload: an element arriving under a name+kind that
  // is already loaded updates the existing table entry (keeping lookups
  // unambiguous) and invalidates any jam-cache image the old content left
  // behind — a reloaded jam must never execute its stale cached bytes.
  const auto upsert = [this](ElementInfo&& info) {
    for (auto& existing : elements_) {
      if (existing.name != info.name || existing.kind != info.kind) continue;
      if (existing.content_handle != 0 &&
          jam_cache_.contains(existing.content_handle)) {
        DropJamCacheEntry(existing.content_handle, /*evicted=*/false);
      }
      if (existing.receiver_got != 0) {
        (void)host_.memory().Free(existing.receiver_got);
      }
      existing = std::move(info);
      return;
    }
    elements_.push_back(std::move(info));
  };

  // Rieds first: they provide the interfaces jams link against.
  for (const auto& elem : package.elements) {
    if (elem.kind != pkg::ElementKind::kRied) continue;
    jelf::LoadOptions opts;
    opts.allow_export_override = allow_reload;
    opts.verify_code = config_.security.verify_injected_code;
    TC_ASSIGN_OR_RETURN(jelf::LoadedLibrary lib,
                        jelf::LoadLibrary(host_.memory(), elem.ried_image,
                                          ns_, opts));
    // Auto-init: "rieds ... are loaded and auto-initialized" (§IV-A).
    const std::string init_symbol = elem.entry_symbol + "_init";
    const auto init = lib.exports.find(init_symbol);
    if (init != lib.exports.end()) {
      vm::Interpreter interp(host_.memory(), host_.caches(),
                             config_.receiver_core, &natives_, config_.exec);
      const auto r = interp.Execute(init->second, {}, pool_[0].stack_top);
      if (!r.status.ok()) {
        return Status(r.status.code(),
                      StrFormat("ried init '%s' failed: %s",
                                init_symbol.c_str(),
                                r.status.message().c_str()));
      }
    }
    loaded_libraries_.push_back(std::move(lib));

    ElementInfo info;
    info.kind = elem.kind;
    info.elem_id = elem.element_id;
    info.name = elem.name;
    upsert(std::move(info));
  }

  // Jams: cache injectable images; load the Local Function library.
  std::optional<jelf::LoadedLibrary> local_lib;
  if (!package.local_library.text.empty()) {
    jelf::LoadOptions opts;
    opts.allow_export_override = allow_reload;
    opts.verify_code = config_.security.verify_injected_code;
    TC_ASSIGN_OR_RETURN(jelf::LoadedLibrary lib,
                        jelf::LoadLibrary(host_.memory(),
                                          package.local_library, ns_, opts));
    local_lib = std::move(lib);
  }
  for (const auto& elem : package.elements) {
    if (elem.kind != pkg::ElementKind::kJam) continue;
    // Layout validation must precede CodeBlobOf: a hostile package with
    // got_offset < text.size() would otherwise overflow the blob copy
    // (the blob is got_offset bytes, the memcpy is text.size()).
    TC_RETURN_IF_ERROR(jelf::ValidateImageLayout(elem.injected_image));
    ElementInfo info;
    info.kind = elem.kind;
    info.elem_id = elem.element_id;
    info.name = elem.name;
    info.injected_image = elem.injected_image;
    info.code_blob = CodeBlobOf(elem.injected_image);
    const auto entry = elem.injected_image.exports.find(elem.entry_symbol);
    if (entry == elem.injected_image.exports.end()) {
      return NotFound(StrFormat("jam '%s' lacks entry '%s'",
                                elem.name.c_str(),
                                elem.entry_symbol.c_str()));
    }
    info.entry_offset = entry->second.offset;
    info.content_handle = jelf::ComputeJamHandle(
        info.code_blob, elem.injected_image.got_symbols);
    if (local_lib.has_value()) {
      const auto local = local_lib->exports.find(elem.entry_symbol);
      if (local != local_lib->exports.end()) {
        info.local_entry = local->second;
      }
    }
    upsert(std::move(info));
  }
  if (local_lib.has_value()) {
    loaded_libraries_.push_back(std::move(*local_lib));
  }
  // Confinement windows track the library set (reloads keep old images
  // mapped, so stale GOT values that still point at them stay executable).
  library_windows_.clear();
  library_windows_.reserve(loaded_libraries_.size());
  for (const auto& lib : loaded_libraries_) {
    library_windows_.push_back(vm::MemWindow{lib.base, lib.size});
  }
  return Status::Ok();
}

Status Runtime::SyncNamespaces(Runtime& a, Runtime& b) {
  const PeerId a_to_b = a.PeerIdOf(b);
  const PeerId b_to_a = b.PeerIdOf(a);
  if (a_to_b == kInvalidPeer || b_to_a == kInvalidPeer) {
    return FailedPrecondition("runtimes not connected");
  }
  for (const auto& [name, value] : a.ns_.entries()) {
    b.peers_[b_to_a].remote_ns[name] = value;
  }
  for (const auto& [name, value] : b.ns_.entries()) {
    a.peers_[a_to_b].remote_ns[name] = value;
  }
  // Jam-cache invalidation rides the re-sync: whatever changed underneath
  // this sync (package reload, rebind) must not be served from a cached
  // image or addressed by a remembered handle. Each receiver flushes its
  // cache; each sender forgets every peer's handles (in-flight by-handle
  // sends keep their resend recipes, so a post-sync NAK still recovers).
  a.FlushJamCache();
  b.FlushJamCache();
  a.ForgetPeerHandles();
  b.ForgetPeerHandles();
  return Status::Ok();
}

StatusOr<const Runtime::ElementInfo*> Runtime::FindElement(
    const std::string& name) const {
  for (const auto& elem : elements_) {
    if (elem.name == name && elem.kind == pkg::ElementKind::kJam) {
      return &elem;
    }
  }
  return NotFound(StrFormat("jam '%s' (package not loaded?)", name.c_str()));
}

StatusOr<FrameLayout> Runtime::LayoutFor(const std::string& name, Invoke mode,
                                         std::uint64_t args_bytes,
                                         std::uint64_t usr_bytes) const {
  TC_ASSIGN_OR_RETURN(const ElementInfo* elem, FindElement(name));
  FrameSpec spec;
  spec.injected = mode == Invoke::kInjected;
  spec.args_size = args_bytes;
  spec.usr_size = usr_bytes;
  spec.split_code_data = config_.security.split_code_data_pages;
  if (spec.injected) {
    spec.got_slots = elem->injected_image.got_slot_count();
    spec.code_size = elem->code_blob.size();
  }
  return FrameLayout::Compute(spec);
}

std::uint32_t Runtime::DomainOfPoolCore(
    std::uint32_t pool_index) const noexcept {
  return host_.caches().config().DomainOfCore(pool_[pool_index].core_id);
}

std::uint32_t Runtime::PickSendBank(const PeerState& peer) const noexcept {
  // The idle-owner hint takes priority over rotation position: the first
  // idle-owner open bank wins even past an earlier open-but-busy one.
  // Rotation order (from the round-robin target) only decides among
  // equally-idle banks, keeping the pick deterministic.
  std::uint32_t first_open = config_.banks;  // sentinel: none open
  for (std::uint32_t i = 0; i < config_.banks; ++i) {
    const std::uint32_t b = (peer.send_bank + i) % config_.banks;
    if (peer.bank_open[b] == 0) continue;
    if (peer.bank_owner_idle[b] != 0) return b;
    if (first_open == config_.banks) first_open = b;
  }
  return first_open == config_.banks ? peer.send_bank : first_open;
}

bool Runtime::HasFreeSlot(PeerId peer) const {
  if (peer >= peers_.size()) return false;
  const PeerState& p = peers_[peer];
  // Opening another bank must also clear the adaptive congestion window
  // (mid-bank fills were admitted when their bank opened).
  if (p.send_in_bank == 0 && !AdaptiveAdmits(p)) return false;
  // Mid-bank the current bank is open by construction (it only closes when
  // its last slot is posted). At a bank boundary the biased sender may
  // start any open bank; the strict round-robin sender only the next one.
  if (p.send_in_bank > 0 || !config_.flow_bias) {
    return p.bank_open[p.send_bank] != 0;
  }
  return p.bank_open[PickSendBank(p)] != 0;
}

void Runtime::NotifyWhenSlotFree(PeerId peer, std::function<void()> cb) {
  if (HasFreeSlot(peer)) {
    cb();
    return;
  }
  if (peer >= peers_.size()) return;  // never wired: nothing will free up
  peers_[peer].slot_waiters.push_back(std::move(cb));
}

StatusOr<SendReceipt> Runtime::Send(PeerId peer_id, const std::string& name,
                                    Invoke mode,
                                    std::span<const std::uint64_t> args,
                                    std::span<const std::uint8_t> usr,
                                    std::uint16_t extra_flags) {
  if (peer_id >= peers_.size()) {
    return FailedPrecondition(
        StrFormat("peer %u not wired (peer_count=%zu)", peer_id,
                  peers_.size()));
  }
  PeerState& peer = peers_[peer_id];
  PeerStats& pstats = stats_.per_peer[peer_id];
  TC_ASSIGN_OR_RETURN(const ElementInfo* elem, FindElement(name));

  // Bank choice: strict round-robin fills send_bank; with flow_bias a
  // bank boundary may divert to an open bank whose owning receiver core
  // reported idle (or to any open bank ahead of a still-closed target).
  const std::uint32_t in_bank = peer.send_in_bank;
  std::uint32_t bank = peer.send_bank;
  if (in_bank == 0 && config_.flow_bias) bank = PickSendBank(peer);
  if (peer.bank_open[bank] == 0) {
    ++stats_.send_stalls;
    ++pstats.send_stalls;
    return ResourceExhausted(StrFormat("bank %u flag not returned", bank));
  }
  // Adaptive admission: opening a fresh bank needs window headroom over
  // the banks already closed toward this peer (mid-bank fills ride the
  // admission their bank got).
  if (in_bank == 0 && !AdaptiveAdmits(peer)) {
    ++stats_.adaptive_refusals;
    ++stats_.send_stalls;
    ++pstats.send_stalls;
    return ResourceExhausted(
        StrFormat("adaptive window (%llu milli-banks) refuses a new bank",
                  static_cast<unsigned long long>(peer.cwnd_milli)));
  }
  const std::uint32_t slot = bank * config_.mailboxes_per_bank + in_bank;

  // ---- build the frame ------------------------------------------------
  FrameSpec spec;
  spec.injected = mode == Invoke::kInjected;
  spec.args_size = args.size() * 8;
  spec.usr_size = usr.size();
  spec.split_code_data = config_.security.split_code_data_pages;

  // Invoke-by-handle downgrade of the frame shape: when the jam cache is
  // on and this sender believes the peer already holds the jam's image,
  // GOTP/CODE stay home and an 8-byte content handle rides instead. The
  // belief can be stale (eviction, re-sync on the far side) — the
  // receiver then NAKs the slot in the bank flag and OnBankFlag resends
  // full-body, so a wrong guess costs one round trip, never an error.
  const bool by_handle = spec.injected && config_.jam_cache.enabled &&
                         (extra_flags & kFlagNoExecute) == 0 &&
                         peer.peer_handles.contains(elem->content_handle);

  std::vector<std::uint64_t> gotp;
  std::span<const std::uint8_t> code;
  if (by_handle) {
    spec.injected = false;
    spec.by_handle = true;
    spec.split_code_data = false;  // no code rides along — nothing to split
  } else if (spec.injected) {
    spec.got_slots = elem->injected_image.got_slot_count();
    spec.code_size = elem->code_blob.size();
    code = elem->code_blob;
    gotp.reserve(spec.got_slots);
    for (const auto& symbol : elem->injected_image.got_symbols) {
      if (config_.security.receiver_installs_got) {
        gotp.push_back(0);
        continue;
      }
      const auto it = peer.remote_ns.find(symbol);
      if (it == peer.remote_ns.end()) {
        return NotFound(StrFormat(
            "remote symbol '%s' unknown — namespaces not synchronized?",
            symbol.c_str()));
      }
      gotp.push_back(it->second);
    }
  }
  // Local invocation needs the *receiver's* library binding; that is
  // checked at receive time (the receiver owns its dispatch vector).

  FrameHeader header;
  header.sn = next_sn_++;
  header.elem_id = elem->elem_id;
  header.flags = extra_flags;
  // A by-handle frame is still an Injected Function invocation — the code
  // just lives in the receiver's cache instead of the frame.
  if (by_handle) header.flags |= kFlagInjected;

  std::vector<std::uint8_t> args_bytes(args.size() * 8);
  if (!args.empty()) {
    std::memcpy(args_bytes.data(), args.data(), args_bytes.size());
  }
  std::vector<std::uint8_t> frame;
  if (by_handle) {
    TC_ASSIGN_OR_RETURN(frame,
                        PackHandleFrame(spec, header, elem->content_handle,
                                        args_bytes, usr));
  } else {
    TC_ASSIGN_OR_RETURN(frame,
                        PackFrame(spec, header, gotp, code, args_bytes, usr));
  }
  const FrameLayout layout = FrameLayout::Compute(spec);
  if (frame.size() > config_.mailbox_slot_bytes) {
    return ResourceExhausted(
        StrFormat("frame (%zu B) exceeds mailbox slot (%llu B)", frame.size(),
                  static_cast<unsigned long long>(
                      config_.mailbox_slot_bytes)));
  }

  const mem::VirtAddr remote_slot_addr =
      peer.remote_bank_base[bank] +
      static_cast<std::uint64_t>(in_bank) * config_.mailbox_slot_bytes;
  if (spec.injected && !config_.security.receiver_installs_got) {
    // PRE -> the GOTP table as it will sit in the *receiver's* mailbox.
    TC_RETURN_IF_ERROR(
        PatchPreSlot(frame, layout, remote_slot_addr + layout.gotp_off));
  }

  // Stage the frame in sender memory (the NIC DMA-reads from here) and
  // charge the pack cost.
  const mem::VirtAddr staging = StagingAddr(peer, slot);
  TC_RETURN_IF_ERROR(host_.memory().DmaWrite(staging, frame));
  // Pack cost: the runtime writes the header, GOTP, PRE, code bytes, and
  // the signal word. The payload (ARGS/USR) is framed zero-copy — the
  // application produced it in place, exactly as a UCX perftest payload
  // sits pre-staged in the send buffer — so it is not charged per byte.
  Cycles pack_cycles =
      config_.pack_base_cycles +
      static_cast<Cycles>(spec.got_slots) * config_.got_lookup_cycles;
  pack_cycles += host_.caches().Access(config_.sender_core, staging,
                                       layout.args_off == 0 ? kHeaderBytes
                                                            : layout.args_off,
                                       cache::AccessKind::kStore);
  pack_cycles += host_.caches().Access(config_.sender_core,
                                       staging + layout.sig_off, 8,
                                       cache::AccessKind::kStore);
  const PicoTime pack_time =
      sender_cpu().Charge(pack_cycles, cpu::CycleClass::kPack);

  // ---- post -----------------------------------------------------------
  // Packing happens on the sender CPU before the doorbell, so the actual
  // put is scheduled after the pack time.
  Runtime* peer_rt = peer.runtime;
  const PeerId our_id_at_peer = peer.remote_id;
  auto on_signal_delivered = [peer_rt, our_id_at_peer,
                              slot](const net::PutCompletion& c) {
    if (!c.status.ok()) {
      TC_WARN << "frame delivery failed: " << c.status;
      return;
    }
    peer_rt->OnFrameDelivered(our_id_at_peer, slot, c.delivered_at,
                              c.ecn_marked);
  };

  // Compute the protocol now (for the receipt); the endpoint recomputes it
  // at post time with the same inputs.
  ucxs::Endpoint* endpoint = peer.endpoint.get();
  const ucxs::Protocol protocol = endpoint->SelectProtocol(frame.size());
  const std::uint64_t frame_size = frame.size();
  const bool separate_signal = config_.separate_signal_put;
  const std::uint64_t sig_word = SignalWord(header.sn);
  const std::uint64_t sig_off = layout.sig_off;
  const PicoTime proto_overhead = endpoint->EstimateOverhead(frame.size());
  auto mailbox_rkey = peer.remote_bank_rkey[bank];
  // Homed to this host's lane: Send may be called from outside any lane
  // (preload pumps, drivers), and the post path mutates sender NIC state.
  engine_.ScheduleAfterOn(
      nic_.lane(), pack_time,
      [endpoint, staging, remote_slot_addr, frame_size, mailbox_rkey,
       separate_signal, sig_word, sig_off,
       cb = std::move(on_signal_delivered)]() mutable {
        if (separate_signal) {
          // Payload put (everything before SIG), then a fenced signal put —
          // the configuration for transports without ordering guarantees.
          auto p1 = endpoint->PutNbi(staging, remote_slot_addr, sig_off,
                                     mailbox_rkey, /*fence=*/false, nullptr);
          if (!p1.ok()) {
            TC_WARN << "payload put failed: " << p1.status();
            return;
          }
          auto p2 = endpoint->PutInline(sig_word, remote_slot_addr + sig_off,
                                        mailbox_rkey, /*fence=*/true,
                                        std::move(cb));
          if (!p2.ok()) TC_WARN << "signal put failed: " << p2.status();
        } else {
          auto p = endpoint->PutNbi(staging, remote_slot_addr, frame_size,
                                    mailbox_rkey, /*fence=*/false,
                                    std::move(cb));
          if (!p.ok()) TC_WARN << "frame put failed: " << p.status();
        }
      },
      "tc.post");
  ucxs::PutReceipt put_receipt;
  put_receipt.protocol = protocol;
  put_receipt.sender_overhead = proto_overhead;

  // Flow control: after filling a bank, close it until the flag returns.
  // Commit the bank pick (a biased divert becomes the new rotation point
  // so the fill stays sequential within the bank).
  if (bank != peer.send_bank) {
    ++stats_.biased_sends;
    peer.send_bank = bank;
  }
  ++peer.send_in_bank;
  if (peer.send_in_bank == config_.mailboxes_per_bank) {
    peer.bank_open[bank] = 0;
    peer.bank_owner_idle[bank] = 0;  // hint refreshes with the next flag
    // The flag-return RTT sample starts at bank close; it covers the last
    // frame's flight plus the receiver's drain — the congestion signal
    // the adaptive window reacts to.
    if (config_.adaptive.enabled) peer.bank_close_at[bank] = engine_.Now();
    TC_RETURN_IF_ERROR(
        host_.memory().StoreU64(peer.flag_base + 8ull * bank, 0));
    peer.send_bank = (bank + 1) % config_.banks;
    peer.send_in_bank = 0;
  }
  ++stats_.messages_sent;
  ++pstats.messages_sent;
  stats_.bytes_sent += frame.size();
  pstats.bytes_sent += frame.size();

  // Jam-cache bookkeeping. A by-handle send parks its resend recipe until
  // the bank flag retires the slot (NAK or not); a full-body injected send
  // is what installs the image on the peer, so the handle belief arms here.
  if (config_.jam_cache.enabled && mode == Invoke::kInjected) {
    if (by_handle) {
      ++jam_stats_.by_handle_sends;
      PeerState::PendingByHandle& pending = peer.pending_by_handle[slot];
      pending.name = name;
      pending.handle = elem->content_handle;
      pending.args.assign(args.begin(), args.end());
      pending.usr.assign(usr.begin(), usr.end());
      pending.extra_flags = extra_flags;
    } else if ((extra_flags & kFlagNoExecute) == 0) {
      peer.peer_handles.insert(elem->content_handle);
    }
  }

  SendReceipt receipt;
  receipt.sn = header.sn;
  receipt.frame_len = frame.size();
  receipt.protocol = put_receipt.protocol;
  receipt.sender_cost = pack_time + put_receipt.sender_overhead;
  receipt.by_handle = by_handle;
  return receipt;
}

Status Runtime::StartReceiver() {
  if (!initialized_) return FailedPrecondition("not initialized");
  if (receiver_started_) return Status::Ok();
  receiver_started_ = true;
  for (PoolCore& member : pool_) member.idle_since = engine_.Now();
  return Status::Ok();
}

void Runtime::OnFrameDelivered(PeerId from, std::uint32_t slot,
                               PicoTime delivered_at, bool ecn_marked) {
  if (from >= peers_.size()) return;
  ++stats_.messages_delivered;
  ++stats_.per_peer[from].messages_delivered;
  peers_[from].ready[slot] = ReadyFrame{from, slot, delivered_at};
  // The bank's current claim holder gets first crack at the frame; with
  // stealing active, every other pool member then gets a deterministic
  // chance to notice a backlog it could relieve.
  const std::uint32_t bank = slot / config_.mailboxes_per_bank;
  if (ecn_marked) {
    // A switch on the path marked this frame: remember it against the
    // bank so the mark goes home (exactly once) with the bank's flag.
    ++stats_.ecn_marks_seen;
    if (config_.adaptive.enabled) peers_[from].bank_ecn[bank] = 1;
  }
  const std::uint32_t holder = ClaimOf(from, bank);
  ++claim_backlog_[holder];
  ++peers_[from].bank_ready[bank];
  MaybeBeginNext(holder);
  OfferStealOpportunities(holder);
}

void Runtime::OfferStealOpportunities(std::uint32_t first) {
  if (!stealing_active_) return;
  for (std::uint32_t i = 0; i < pool_.size(); ++i) {
    if (i != first) MaybeBeginNext(i);
  }
}

void Runtime::OnBankFlag(PeerId peer, std::uint32_t bank) {
  if (peer >= peers_.size() || bank >= config_.banks) return;
  PeerState& p = peers_[peer];
  // Two flag-word shapes share this reverse channel (see ReturnBankFlag):
  // bit 0 set is the real bank-open flag (full drain; bit 1 is the idle
  // hint for the flow-bias pick), bit 0 clear is a NAK-only push — the
  // receiver is mid-bank, but a by-handle frame missed its cache and must
  // not wait for the drain to learn it. Bits [32, 64) carry the per-slot
  // NAK mask in both shapes.
  const auto word = host_.memory().LoadU64(p.flag_base + 8ull * bank);
  const bool open = !word.ok() || (*word & 1) != 0;
  if (config_.jam_cache.enabled) {
    const std::uint32_t nak_mask =
        word.ok() ? static_cast<std::uint32_t>(*word >> 32) : 0;
    // Resends run before external slot waiters: the NAKed invokes were
    // accepted by Send() once already and have first claim on whatever
    // slots are free. A full-drain flag also settles the bank's remaining
    // pending by-handle sends: un-NAKed means served from the cache.
    HandleNakMask(peer, bank, nak_mask, /*retire_served=*/open);
  }
  if (!open) return;
  // Bit 2 is the ECN echo (ECE): the receiver saw a switch mark on a frame
  // of this bank. Counted unconditionally so the fabric-wide
  // echoes_sent == echoes_seen ledger holds even when only one side runs
  // the adaptive window.
  const bool ece = word.ok() && (*word & 4) != 0;
  if (ece) ++stats_.ecn_echoes_seen;
  if (config_.adaptive.enabled) AdaptiveOnFlag(p, bank, ece);
  p.bank_open[bank] = 1;
  p.bank_owner_idle[bank] = (word.ok() && (*word & 2) != 0) ? 1 : 0;
  if (!p.slot_waiters.empty()) {
    auto waiters = std::move(p.slot_waiters);
    p.slot_waiters.clear();
    for (auto& w : waiters) w();
  }
}

bool Runtime::AdaptiveAdmits(const PeerState& peer) const noexcept {
  if (!config_.adaptive.enabled) return true;
  std::uint32_t closed = 0;
  for (std::uint32_t b = 0; b < config_.banks; ++b) {
    if (peer.bank_open[b] == 0) ++closed;
  }
  // floor(cwnd) never drops below min_banks >= 1, and the gate always
  // passes with nothing closed — the window can throttle, never deadlock.
  return closed < std::max<std::uint64_t>(1, peer.cwnd_milli / 1000);
}

void Runtime::AdaptiveOnFlag(PeerState& peer, std::uint32_t bank, bool ece) {
  const PicoTime now = engine_.Now();
  if (peer.bank_close_at[bank] != 0) {
    const PicoTime rtt = now - peer.bank_close_at[bank];
    peer.bank_close_at[bank] = 0;
    peer.rtt_last = rtt;
    if (peer.rtt_min == 0 || rtt < peer.rtt_min) peer.rtt_min = rtt;
  }
  const std::uint64_t floor_milli =
      static_cast<std::uint64_t>(config_.adaptive.min_banks) * 1000;
  const std::uint64_t ceil_milli =
      static_cast<std::uint64_t>(config_.banks) * 1000;
  if (ece && now >= peer.ecn_hold_until) {
    // Multiplicative decrease — once per observed RTT, so one congestion
    // event's burst of echoes costs one backoff, not a collapse.
    peer.cwnd_milli =
        std::max(floor_milli, peer.cwnd_milli *
                                  config_.adaptive.decrease_beta_milli / 1000);
    peer.ecn_hold_until = now + (peer.rtt_last > 0 ? peer.rtt_last : 1);
    ++stats_.cwnd_decreases;
  } else if (!ece && peer.cwnd_milli < ceil_milli) {
    peer.cwnd_milli = std::min(
        ceil_milli, peer.cwnd_milli + config_.adaptive.additive_increase_milli);
    ++stats_.cwnd_increases;
  }
  peer.cwnd_min_seen = std::min(peer.cwnd_min_seen, peer.cwnd_milli);
  peer.cwnd_max_seen = std::max(peer.cwnd_max_seen, peer.cwnd_milli);
}

Status Runtime::InjectFlagWordForTest(PeerId peer, std::uint32_t bank,
                                      std::uint64_t word) {
  if (peer >= peers_.size()) {
    return FailedPrecondition(StrFormat("peer %u not wired", peer));
  }
  if (bank >= config_.banks) {
    return InvalidArgument(StrFormat("bank %u out of range", bank));
  }
  TC_RETURN_IF_ERROR(
      host_.memory().StoreU64(peers_[peer].flag_base + 8ull * bank, word));
  OnBankFlag(peer, bank);
  return Status::Ok();
}

void Runtime::HandleNakMask(PeerId peer_id, std::uint32_t bank,
                            std::uint32_t mask, bool retire_served) {
  PeerState& p = peers_[peer_id];
  // Walk this bank's pending by-handle entries: a set bit means the
  // invoke was skipped at the peer and must be resent full-body. A clear
  // bit means "served" only on a full-drain flag (@p retire_served) — a
  // mid-bank NAK push says nothing about slots still queued behind the
  // peer's cursor, so their entries stay pending.
  std::vector<PeerState::PendingByHandle> to_resend;
  for (std::uint32_t i = 0; i < config_.mailboxes_per_bank; ++i) {
    const std::uint32_t slot = bank * config_.mailboxes_per_bank + i;
    const auto it = p.pending_by_handle.find(slot);
    if (it == p.pending_by_handle.end()) continue;
    if ((mask & (1u << i)) != 0) {
      ++jam_stats_.naks_received;
      // The belief was wrong — evicted, flushed, or never installed.
      // Forget the handle so the resend (and any send after it) goes
      // full-body and re-installs.
      p.peer_handles.erase(it->second.handle);
      to_resend.push_back(std::move(it->second));
      p.pending_by_handle.erase(it);
    } else if (retire_served) {
      p.pending_by_handle.erase(it);
    }
  }
  for (PeerState::PendingByHandle& entry : to_resend) {
    ResendAfterNak(peer_id, std::move(entry));
  }
}

void Runtime::ResendAfterNak(PeerId peer_id,
                             PeerState::PendingByHandle entry) {
  auto attempt = [this, peer_id, entry = std::move(entry)]() mutable {
    const auto receipt =
        Send(peer_id, entry.name, Invoke::kInjected, entry.args, entry.usr,
             entry.extra_flags);
    if (receipt.ok()) {
      ++jam_stats_.resends;
      return;
    }
    if (receipt.status().code() == StatusCode::kResourceExhausted) {
      // Flow control: every bank toward the peer is closed right now.
      // Park the retry on the next returned flag.
      NotifyWhenSlotFree(peer_id, [this, peer_id, entry]() mutable {
        ResendAfterNak(peer_id, std::move(entry));
      });
      return;
    }
    TC_WARN << "NAK resend of jam '" << entry.name
            << "' failed: " << receipt.status();
  };
  attempt();
}

void Runtime::MaybeBeginNext(std::uint32_t pool_index) {
  if (!receiver_started_) return;
  PoolCore& member = pool_[pool_index];
  if (member.processing) return;
  // A draining member only finishes the frame it already began; a
  // quiesced one scans nothing at all (its banks re-homed at quiesce).
  if (member.state != PoolCoreState::kActive) return;
  // This pool core scans the heads of the banks it claims — its affinity
  // shard plus any banks in its steal queue, across every peer's mailbox
  // slice — and serves the earliest-delivered one: a fair sweep across
  // senders under incast. Only when that scan comes up empty does an idle
  // core consider sacrificing stash locality and stealing. Ties and the
  // scans themselves are resolved in (peer, bank) index order, so the
  // choice never depends on host-side container iteration order.
  const ReadyFrame* best = ScanBankHeads(pool_index);
  if (best == nullptr && stealing_active_) best = TrySteal(pool_index);
  if (best == nullptr) {
    if (!member.idle_since.has_value()) member.idle_since = engine_.Now();
    return;
  }
  ReadyFrame frame = *best;
  frame.pool = pool_index;
  peers_[frame.peer].bank_in_flight[frame.slot / config_.mailboxes_per_bank] =
      1;
  PicoTime waited = 0;
  if (member.idle_since.has_value() &&
      frame.delivered_at >= *member.idle_since) {
    waited = frame.delivered_at - *member.idle_since;
  }
  member.idle_since.reset();
  member.processing = true;
  BeginProcess(frame, waited);
}

const Runtime::ReadyFrame* Runtime::ScanBankHeads(std::uint32_t pool_index) {
  const ReadyFrame* best = nullptr;
  for (PeerId peer = 0; peer < peers_.size(); ++peer) {
    PeerState& p = peers_[peer];
    for (std::uint32_t bank = 0; bank < config_.banks; ++bank) {
      if (ClaimOf(peer, bank) != pool_index) continue;
      if (p.bank_in_flight[bank] != 0) continue;
      const std::uint32_t head =
          bank * config_.mailboxes_per_bank + p.bank_cursor[bank];
      const auto it = p.ready.find(head);
      if (it == p.ready.end()) continue;
      if (best == nullptr || it->second.delivered_at < best->delivered_at) {
        best = &it->second;
      }
    }
  }
  return best;
}

const Runtime::ReadyFrame* Runtime::TrySteal(std::uint32_t thief) {
  PoolCore& member = pool_[thief];
  // Schmitt trigger: a fresh steal needs threshold + hysteresis; while
  // steals keep succeeding, threshold suffices. Damps claim ping-pong
  // around the threshold under churny load. Effective values clamp
  // oversized knobs to the whole-fabric inbound capacity.
  const std::uint64_t trigger =
      static_cast<std::uint64_t>(EffectiveStealThreshold()) +
      (member.steal_armed ? 0 : EffectiveStealHysteresis());
  // Victim: the most-loaded active sibling by ready-frame backlog over the
  // banks it currently claims (ties resolve to the lowest pool index). The
  // backlog ledger is maintained incrementally on delivery, completion,
  // and handoff, so this pick is O(pool) per idle scan. With
  // steal.domain_aware, a same-domain victim that clears the trigger wins
  // even past a deeper remote-domain backlog — the stolen bank's fills
  // then stay on this side of the interconnect.
  const std::uint32_t thief_domain = DomainOfPoolCore(thief);
  std::uint32_t victim = kInvalidPoolIndex;
  std::uint64_t victim_backlog = 0;
  std::uint32_t local_victim = kInvalidPoolIndex;
  std::uint64_t local_backlog = 0;
  for (std::uint32_t j = 0; j < pool_.size(); ++j) {
    if (j == thief) continue;
    if (pool_[j].state != PoolCoreState::kActive) continue;
    if (claim_backlog_[j] > victim_backlog) {
      victim = j;
      victim_backlog = claim_backlog_[j];
    }
    if (DomainOfPoolCore(j) == thief_domain &&
        claim_backlog_[j] > local_backlog) {
      local_victim = j;
      local_backlog = claim_backlog_[j];
    }
  }
  if (victim_backlog < trigger) victim = kInvalidPoolIndex;
  if (local_backlog < trigger) local_victim = kInvalidPoolIndex;

  // Oldest ready bank head among a victim's claimed banks. A bank with
  // a frame mid-process cannot be stolen (the handoff would double-begin
  // its head), and a bank whose head has not arrived yet has nothing to
  // process in order.
  const ReadyFrame* best = nullptr;
  PeerId best_peer = kInvalidPeer;
  std::uint32_t best_bank = 0;
  const auto scan_victim = [&](std::uint32_t v) {
    best = nullptr;
    for (PeerId peer = 0; peer < peers_.size(); ++peer) {
      PeerState& p = peers_[peer];
      for (std::uint32_t bank = 0; bank < config_.banks; ++bank) {
        if (ClaimOf(peer, bank) != v) continue;
        if (p.bank_in_flight[bank] != 0) continue;
        const std::uint32_t head =
            bank * config_.mailboxes_per_bank + p.bank_cursor[bank];
        const auto it = p.ready.find(head);
        if (it == p.ready.end()) continue;
        if (best == nullptr || it->second.delivered_at < best->delivered_at) {
          best = &it->second;
          best_peer = peer;
          best_bank = bank;
        }
      }
    }
    return best != nullptr;
  };

  // Same-domain victim first (when the policy is on and it clears the
  // trigger), but never at the price of idling: if its backlog turns out
  // unstealable — every triggering bank mid-frame, the structurally
  // unstealable 1-hot-bank shape — fall through to the global pick
  // rather than returning empty while a remote victim has ready banks.
  std::uint32_t chosen = kInvalidPoolIndex;
  const bool try_local =
      config_.steal.domain_aware && local_victim != kInvalidPoolIndex;
  if (try_local && scan_victim(local_victim)) {
    chosen = local_victim;
  } else if (victim != kInvalidPoolIndex &&
             !(try_local && victim == local_victim) &&  // already scanned
             scan_victim(victim)) {
    chosen = victim;
  }
  if (chosen == kInvalidPoolIndex) {
    member.steal_armed = false;
    return nullptr;
  }
  const std::uint32_t stolen_from = chosen;
  // Ownership handoff: the thief now claims the bank and owes the rest of
  // its drain — including the flag return — until the claim reverts. A
  // bank can be stolen onward (even back by its home owner, which
  // settles the claim home), so any previous thief's queue entry migrates
  // rather than lingering, and the bank's backlog moves ledgers with it.
  DropFromStealQueues(best_peer, best_bank);
  claim_backlog_[stolen_from] -= peers_[best_peer].bank_ready[best_bank];
  claim_backlog_[thief] += peers_[best_peer].bank_ready[best_bank];
  peers_[best_peer].bank_claim[best_bank] = thief;
  if (HomeOf(best_peer, best_bank) != thief) {
    member.stolen_banks.emplace_back(best_peer, best_bank);
  }
  member.steal_armed = true;
  ++member.wait_stats.banks_stolen;
  ++pool_[stolen_from].wait_stats.banks_donated;
  ++stats_.steals;
  return best;
}

void Runtime::DropFromStealQueues(PeerId peer, std::uint32_t bank) {
  const auto key = std::make_pair(peer, bank);
  for (PoolCore& m : pool_) {
    auto& queue = m.stolen_banks;
    queue.erase(std::remove(queue.begin(), queue.end(), key), queue.end());
  }
}

void Runtime::ReleaseBankClaim(PeerId peer, std::uint32_t bank) {
  if (!stealing_active_) return;
  PeerState& p = peers_[peer];
  const std::uint32_t owner = p.bank_home[bank];
  const std::uint32_t holder = p.bank_claim[bank];
  if (holder != owner) {
    claim_backlog_[holder] -= p.bank_ready[bank];
    claim_backlog_[owner] += p.bank_ready[bank];
  }
  p.bank_claim[bank] = owner;
  DropFromStealQueues(peer, bank);
}

std::uint32_t Runtime::PickReshardTarget(std::uint32_t preferred_domain) {
  // Candidates in pool-index order; a same-domain survivor wins when
  // placement is domain-aware, so a re-homed bank's fills keep landing on
  // this side of the interconnect. The rotating cursor spreads a quiesced
  // core's banks across the candidate set instead of piling them on one.
  std::vector<std::uint32_t> all;
  std::vector<std::uint32_t> same;
  for (std::uint32_t i = 0; i < pool_.size(); ++i) {
    if (pool_[i].state != PoolCoreState::kActive) continue;
    all.push_back(i);
    if (DomainOfPoolCore(i) == preferred_domain) same.push_back(i);
  }
  const std::vector<std::uint32_t>& candidates =
      (config_.domain_aware_placement && !same.empty()) ? same : all;
  if (candidates.empty()) return kInvalidPoolIndex;
  return candidates[reshard_cursor_++ % candidates.size()];
}

void Runtime::ApplyBankHome(PeerId peer, std::uint32_t bank,
                            std::uint32_t new_home) {
  PeerState& p = peers_[peer];
  p.bank_pending_home[bank] = kInvalidPoolIndex;
  const std::uint32_t old_home = p.bank_home[bank];
  if (old_home == new_home) return;  // e.g. a revive cancelling a quiesce
  // The bank's backlog follows its new owner; a steal lease on the bank
  // is superseded — a permanent handoff outranks a revertible claim.
  const std::uint32_t holder = ClaimOf(peer, bank);
  claim_backlog_[holder] -= p.bank_ready[bank];
  claim_backlog_[new_home] += p.bank_ready[bank];
  if (stealing_active_) {
    p.bank_claim[bank] = new_home;
    DropFromStealQueues(peer, bank);
  }
  p.bank_home[bank] = new_home;
  ++stats_.banks_resharded;
  ++pool_[old_home].wait_stats.banks_resharded_out;
  ++pool_[new_home].wait_stats.banks_resharded_in;
}

void Runtime::RehomeBank(PeerId peer, std::uint32_t bank,
                         std::uint32_t new_home) {
  PeerState& p = peers_[peer];
  if (p.bank_in_flight[bank] != 0) {
    // Mid-frame banks never change hands; the handoff applies the moment
    // the frame completes (CompleteFrame), preserving in-bank order.
    p.bank_pending_home[bank] = new_home;
    return;
  }
  ApplyBankHome(peer, bank, new_home);
}

void Runtime::FinishQuiesce(std::uint32_t pool_index) {
  PoolCore& member = pool_[pool_index];
  member.state = PoolCoreState::kQuiesced;
  // Counted here — not at QuiesceCore — so a drain a revive called off
  // never reads as a completed quiesce.
  ++member.wait_stats.quiesces;
  member.steal_armed = false;
  member.idle_since.reset();
  if (!stealing_active_) return;
  // Any steal lease the member still holds reverts to the banks' home
  // owners — nothing may stay parked on a core that will never scan again
  // — and each owner gets woken to pick the backlog up.
  for (PeerId peer = 0; peer < peers_.size(); ++peer) {
    PeerState& p = peers_[peer];
    for (std::uint32_t bank = 0; bank < config_.banks; ++bank) {
      if (p.bank_claim[bank] != pool_index) continue;
      ReleaseBankClaim(peer, bank);
      MaybeBeginNext(p.bank_home[bank]);
    }
  }
}

StatusOr<std::uint64_t> Runtime::QuiesceCore(std::uint32_t pool_index) {
  if (!initialized_) return FailedPrecondition("not initialized");
  if (pool_index >= pool_.size()) {
    return InvalidArgument(StrFormat("pool index %u out of range (pool=%zu)",
                                     pool_index, pool_.size()));
  }
  PoolCore& member = pool_[pool_index];
  if (member.state != PoolCoreState::kActive) {
    return FailedPrecondition(
        StrFormat("pool core %u already draining or quiesced", pool_index));
  }
  if (ActivePoolCores() < 2) {
    return FailedPrecondition(
        "cannot quiesce the last active pool core — the pool must keep at "
        "least one survivor to drain the mailboxes");
  }
  member.state = PoolCoreState::kDraining;

  // Re-shard every bank homed to the quiescing member onto the survivors.
  // The stranded backlog — frames delivered but not yet executed on those
  // banks, including the one mid-frame — is what the handoff must drain
  // without loss; the invariant harness holds the protocol to that.
  std::uint64_t stranded = 0;
  for (PeerId peer = 0; peer < peers_.size(); ++peer) {
    PeerState& p = peers_[peer];
    for (std::uint32_t bank = 0; bank < config_.banks; ++bank) {
      if (p.bank_home[bank] != pool_index) continue;
      stranded += p.bank_ready[bank];
      const std::uint32_t target =
          PickReshardTarget(host_.memory().DomainOf(p.bank_base[bank]));
      RehomeBank(peer, bank, target);
    }
  }
  stats_.frames_drained_during_quiesce += stranded;

  // A member not mid-frame quiesces immediately (releasing any steal
  // lease it holds); one mid-frame finishes that single frame first and
  // quiesces in CompleteFrame.
  if (!member.processing) FinishQuiesce(pool_index);

  // Wake the survivors in index order: re-homed backlog arrived on their
  // ledgers without an OnFrameDelivered, and idle cores may now also see
  // a steal opportunity.
  for (std::uint32_t i = 0; i < pool_.size(); ++i) {
    if (i != pool_index) MaybeBeginNext(i);
  }
  return stranded;
}

Status Runtime::ReviveCore(std::uint32_t pool_index) {
  if (!initialized_) return FailedPrecondition("not initialized");
  if (pool_index >= pool_.size()) {
    return InvalidArgument(StrFormat("pool index %u out of range (pool=%zu)",
                                     pool_index, pool_.size()));
  }
  PoolCore& member = pool_[pool_index];
  if (member.state == PoolCoreState::kActive) {
    return FailedPrecondition(
        StrFormat("pool core %u is active, not quiesced", pool_index));
  }
  // Reviving a still-draining member simply calls the drain off: its
  // in-flight frame keeps going and its banks come straight back.
  member.state = PoolCoreState::kActive;

  // Restore the original affinity map for this member only: banks whose
  // affinity owner is someone else — even ones re-sharded here from a
  // still-quiesced sibling — stay where they are until *their* owner
  // revives.
  for (PeerId peer = 0; peer < peers_.size(); ++peer) {
    PeerState& p = peers_[peer];
    for (std::uint32_t bank = 0; bank < config_.banks; ++bank) {
      if (PoolIndexFor(peer, bank) != pool_index) continue;
      if (p.bank_home[bank] == pool_index &&
          p.bank_pending_home[bank] == kInvalidPoolIndex) {
        continue;
      }
      RehomeBank(peer, bank, pool_index);
    }
  }
  if (!member.processing && !member.idle_since.has_value()) {
    member.idle_since = engine_.Now();
  }
  MaybeBeginNext(pool_index);
  return Status::Ok();
}

std::uint32_t Runtime::ActivePoolCores() const noexcept {
  std::uint32_t active = 0;
  for (const PoolCore& member : pool_) {
    if (member.state == PoolCoreState::kActive) ++active;
  }
  return active;
}

std::uint32_t Runtime::BanksHomedTo(std::uint32_t pool_index) const noexcept {
  std::uint32_t homed = 0;
  for (const PeerState& p : peers_) {
    for (const std::uint32_t home : p.bank_home) {
      if (home == pool_index) ++homed;
    }
  }
  return homed;
}

std::uint32_t Runtime::PendingRehomes() const noexcept {
  std::uint32_t pending = 0;
  for (const PeerState& p : peers_) {
    for (const std::uint32_t target : p.bank_pending_home) {
      if (target != kInvalidPoolIndex) ++pending;
    }
  }
  return pending;
}

void Runtime::BeginProcess(const ReadyFrame& frame, PicoTime waited) {
  PoolCore& member = pool_[frame.pool];
  auto& core = host_.core(member.core_id);
  const cpu::WaitOutcome outcome = member.wait_model->Wait(waited);
  core.Charge(outcome.cycles_burned, cpu::CycleClass::kWait);
  member.wait_stats.Record(waited, outcome);
  ++stats_.wait_episodes;
  // Detection happens detection_delay after the signal became visible; we
  // may already be past that point if the frame arrived while busy.
  PicoTime wake =
      std::max(engine_.Now(), frame.delivered_at + outcome.detection_delay);
  if (preemption_hook_) wake += preemption_hook_();
  engine_.ScheduleAtOn(
      nic_.lane(), wake, [this, frame] { ProcessFrame(frame); }, "tc.process");
}

void Runtime::ProcessFrame(const ReadyFrame& frame) {
  ReceivedMessage msg;
  msg.delivered_at = frame.delivered_at;
  msg.from = frame.peer;
  msg.slot = frame.slot;
  msg.pool = frame.pool;
  Cycles cycles = config_.validate_cycles;
  auto& caches = host_.caches();
  const std::uint32_t core = pool_[frame.pool].core_id;
  const mem::VirtAddr frame_addr = SlotAddr(peers_[frame.peer], frame.slot);
  // Everything this frame's processing touches (header, signal, code,
  // payload, jam data) runs through the hierarchy synchronously below, so
  // the delta of the cross-domain ledger is exactly what this drain paid.
  const std::uint64_t remote0 = caches.stats().remote_penalty_cycles;
  const auto remote_delta = [&caches, remote0] {
    return caches.stats().remote_penalty_cycles - remote0;
  };

  // The poll/WFE loop re-reads the signal line; its final read plus the
  // header fetch go through the cache hierarchy (this is where stashing
  // vs DRAM delivery first shows up).
  auto hdr_span = host_.memory().RawSpan(frame_addr, kHeaderBytes);
  if (!hdr_span.ok()) {
    ++stats_.security_rejections;
    CompleteFrame(frame, msg, cycles, remote_delta());
    return;
  }
  cycles += caches.Access(core, frame_addr, kHeaderBytes,
                          cache::AccessKind::kLoad);
  // Header validation is bounded by the mailbox slot: a frame_len larger
  // than the slot could only have been written by a corrupted sender.
  auto header = ReadHeader(*hdr_span, config_.mailbox_slot_bytes);
  if (!header.ok()) {
    ++stats_.security_rejections;
    TC_WARN << "frame rejected: " << header.status();
    CompleteFrame(frame, msg, cycles, remote_delta());
    return;
  }
  msg.sn = header->sn;
  msg.elem_id = header->elem_id;
  msg.frame_len = header->frame_len;
  msg.injected = (header->flags & kFlagInjected) != 0;
  msg.by_handle = (header->flags & kFlagByHandle) != 0;

  // Signal word check (magic + SN echo). The signal line access cost.
  cycles += caches.Access(core, frame_addr + header->frame_len - 8, 8,
                          cache::AccessKind::kLoad);
  auto sig = host_.memory().LoadU64(frame_addr + header->frame_len - 8);
  if (!sig.ok() || *sig != SignalWord(header->sn)) {
    ++stats_.security_rejections;
    TC_WARN << "bad signal word for sn " << header->sn;
    CompleteFrame(frame, msg, cycles, remote_delta());
    return;
  }
  if (!config_.fixed_size_frames) {
    // Variable-size frames: the first wait only covered the header magic;
    // model the second wait phase on the end-of-frame signal as one more
    // poll iteration (same put => already visible).
    cycles += config_.wait.poll_iteration_cycles;
  }

  auto invoke_cycles = InvokeFrame(frame, *header, msg);
  if (!invoke_cycles.ok()) {
    ++stats_.security_rejections;
    TC_WARN << "invoke failed: " << invoke_cycles.status();
  } else {
    cycles += *invoke_cycles;
  }
  CompleteFrame(frame, msg, cycles, remote_delta());
}

StatusOr<Cycles> Runtime::InvokeFrame(const ReadyFrame& frame,
                                      const FrameHeader& header,
                                      ReceivedMessage& msg) {
  if ((header.flags & kFlagByHandle) != 0) {
    if (!config_.jam_cache.enabled) {
      return FailedPrecondition(
          "by-handle frame received but the jam cache is disabled");
    }
    return InvokeByHandle(frame, header, msg);
  }

  Cycles cycles = 0;
  const mem::VirtAddr frame_addr = SlotAddr(peers_[frame.peer], frame.slot);
  auto& caches = host_.caches();
  auto& memory = host_.memory();
  PoolCore& member = pool_[frame.pool];
  const std::uint32_t core = member.core_id;

  ElementInfo* elem = nullptr;
  for (auto& e : elements_) {
    if (e.elem_id == header.elem_id && e.kind == pkg::ElementKind::kJam) {
      elem = &e;
    }
  }
  if (elem == nullptr) {
    return NotFound(StrFormat("unknown element id %u", header.elem_id));
  }

  FrameSpec spec;
  spec.injected = msg.injected;
  spec.args_size = header.args_size;
  spec.usr_size = header.usr_size;
  spec.split_code_data = config_.security.split_code_data_pages;
  if (spec.injected) {
    spec.got_slots = elem->injected_image.got_slot_count();
    spec.code_size = elem->code_blob.size();
  }
  const FrameLayout layout = FrameLayout::Compute(spec);

  mem::VirtAddr entry = 0;
  if (msg.injected) {
    // code_size is the full blob (text..rodata); a blob smaller than its
    // own text would wrap the unsigned rodata bound below and neuter the
    // verifier's lea escape check. LoadPackage's layout validation should
    // make this unreachable — keep it as defense in depth.
    const std::uint64_t text_bytes = elem->injected_image.text.size();
    if (spec.code_size < text_bytes) {
      return InvalidArgument(StrFormat(
          "jam '%s': code blob (%llu B) smaller than its text (%llu B)",
          elem->name.c_str(),
          static_cast<unsigned long long>(spec.code_size),
          static_cast<unsigned long long>(text_bytes)));
    }
    if (config_.security.verify_injected_code) {
      TC_ASSIGN_OR_RETURN(const auto code_span,
                          memory.RawSpan(frame_addr + layout.code_off,
                                         text_bytes));
      vm::VerifyLimits limits;
      limits.got_slots = spec.got_slots;
      limits.rodata_bytes = spec.code_size - text_bytes;
      limits.pre_slot_offset = jelf::kPreambleSlotOffset;
      TC_RETURN_IF_ERROR(vm::VerifyCode(code_span, limits));
      cycles += text_bytes / 4;  // ~2 cy / instruction
    }
    if (config_.security.receiver_installs_got) {
      // §V: receiver inserts the GOT pointer from a secure location.
      TC_ASSIGN_OR_RETURN(const mem::VirtAddr table,
                          ReceiverGotFor(*elem, host_.core(core)));
      cycles += caches.Access(core, frame_addr + layout.pre_off, 8,
                              cache::AccessKind::kStore);
      TC_RETURN_IF_ERROR(
          memory.DmaWrite(frame_addr + layout.pre_off,
                          std::span<const std::uint8_t>(
                              reinterpret_cast<const std::uint8_t*>(&table),
                              8)));
    }
    if (config_.security.split_code_data_pages) {
      // W^X around execution: code pages RX, data pages RW.
      cycles += 2 * config_.mprotect_cycles;
      TC_RETURN_IF_ERROR(memory.Protect(frame_addr, layout.args_off,
                                        mem::Perm::kRX));
      TC_RETURN_IF_ERROR(memory.Protect(
          frame_addr + layout.args_off, layout.frame_len - layout.args_off,
          config_.security.read_only_args ? mem::Perm::kRead
                                          : mem::Perm::kRW));
    }
    entry = frame_addr + layout.code_off + elem->entry_offset;
  } else {
    if (elem->local_entry == 0) {
      return FailedPrecondition(
          StrFormat("jam '%s' has no local-function binding on this host",
                    elem->name.c_str()));
    }
    cycles += config_.dispatch_cycles;
    entry = elem->local_entry;
  }

  if ((header.flags & kFlagNoExecute) == 0) {
    vm::Interpreter interp(
        memory, caches, core, &natives_,
        msg.injected
            ? ConfinedExec(frame_addr + layout.code_off, spec.code_size)
            : ConfinedExec(0, 0));
    const std::uint64_t args[3] = {frame_addr + layout.args_off,
                                   frame_addr + layout.usr_off,
                                   header.usr_size};
    const vm::ExecResult result =
        interp.Execute(entry, args, member.stack_top);
    host_.core(core).CountInstructions(result.instructions);
    msg.instructions = result.instructions;
    if (!result.status.ok()) {
      // Restore mailbox permissions before surfacing the fault.
      if (config_.security.split_code_data_pages) {
        (void)memory.Protect(frame_addr, layout.frame_len, mem::Perm::kRWX);
      }
      return Status(result.status.code(),
                    StrFormat("jam '%s' faulted: %s", elem->name.c_str(),
                              result.status.message().c_str()));
    }
    cycles += result.cycles;
    msg.executed = true;
    msg.return_value = result.return_value;
  }

  if (config_.security.split_code_data_pages) {
    cycles += config_.mprotect_cycles;
    TC_RETURN_IF_ERROR(
        memory.Protect(frame_addr, layout.frame_len, mem::Perm::kRWX));
  }

  // Send-once, invoke-many: a full-body injected arrival is the install
  // point of the jam cache — link the post-GOT-rewrite image once so
  // every later invoke of this content can ride a slim by-handle frame.
  if (msg.injected && config_.jam_cache.enabled) {
    auto install = InstallInJamCache(*elem);
    if (install.ok()) {
      cycles += *install;
    } else {
      // A full install failure (e.g. receiver memory pressure) only means
      // the fast path stays cold — the frame itself already executed.
      TC_WARN << "jam-cache install of '" << elem->name
              << "' failed: " << install.status();
    }
  }
  return cycles;
}

StatusOr<Cycles> Runtime::InvokeByHandle(const ReadyFrame& frame,
                                         const FrameHeader& header,
                                         ReceivedMessage& msg) {
  Cycles cycles = 0;
  const mem::VirtAddr frame_addr = SlotAddr(peers_[frame.peer], frame.slot);
  auto& caches = host_.caches();
  auto& memory = host_.memory();
  PoolCore& member = pool_[frame.pool];
  const std::uint32_t core = member.core_id;

  // The 64-bit content handle rides at kHeaderBytes (in place of GOTP).
  cycles += caches.Access(core, frame_addr + kHeaderBytes, 8,
                          cache::AccessKind::kLoad);
  TC_ASSIGN_OR_RETURN(const std::uint64_t handle,
                      memory.LoadU64(frame_addr + kHeaderBytes));

  FrameSpec spec;
  spec.by_handle = true;
  spec.args_size = header.args_size;
  spec.usr_size = header.usr_size;
  const FrameLayout layout = FrameLayout::Compute(spec);

  // Miss — cold cache, eviction, content drift after a reload, or a frame
  // whose claimed element does not match the cached content. The frame is
  // *not* executed (its code never travelled); instead the slot's NAK bit
  // rides home in the bank flag and the sender resends full-body. Not an
  // error and not a security rejection: the protocol is designed to
  // degrade this way.
  const auto nak = [&]() -> Cycles {
    ++jam_stats_.misses;
    ++jam_stats_.naks_sent;
    msg.cache_miss = true;
    PeerState& p = peers_[frame.peer];
    const std::uint32_t bank = frame.slot / config_.mailboxes_per_bank;
    p.bank_nak_mask[bank] |= 1u << (frame.slot % config_.mailboxes_per_bank);
    return cycles;
  };

  const auto it = jam_cache_.find(handle);
  if (it == jam_cache_.end()) return nak();

  JamCacheEntry& entry = it->second;
  if (entry.elem_id != header.elem_id) {
    // Cross-namespace handle trick: the handle names content this cache
    // holds, but the header claims a different element. An honest sender
    // can only produce matched pairs, so degrade to the NAK path — the
    // full-body resend re-establishes which element the bytes belong to —
    // instead of executing cached code under a forged identity.
    return nak();
  }
  ++jam_stats_.hits;
  ++entry.invokes;
  entry.last_used = ++jam_cache_tick_;

  // The per-hit link is a PRE-slot validation of the resident image — the
  // table lookup that replaces the full per-invoke GOT rewrite. No code
  // verification (done at install), no GOT install, and no W^X flips: the
  // cached code pages never see the mailbox.
  cycles += config_.jam_cache.hit_relink_cycles;
  cycles += caches.Access(core, entry.image.pre_addr, 8,
                          cache::AccessKind::kLoad);
  TC_RETURN_IF_ERROR(jelf::RelinkCachedImage(memory, entry.image));

  if (config_.security.verify_cached_invokes) {
    // Paranoid mode: a cached image must be *exactly* as constrained as a
    // full-body frame, so re-verify the resident bytes on every hit (the
    // same pass a full-body arrival would pay, over the same window).
    TC_ASSIGN_OR_RETURN(
        const auto resident,
        memory.RawSpan(entry.image.code_addr, entry.text_size));
    vm::VerifyLimits limits;
    limits.got_slots = entry.image.got_slots;
    limits.rodata_bytes = entry.image.code_size - entry.text_size;
    limits.pre_slot_offset = jelf::kPreambleSlotOffset;
    TC_RETURN_IF_ERROR(vm::VerifyCode(resident, limits));
    cycles += entry.text_size / 4;
  }

  // Savings ledger: what the same invoke would have cost full-body.
  FrameSpec full;
  full.injected = true;
  full.got_slots = entry.image.got_slots;
  full.code_size = entry.image.code_size;
  full.args_size = header.args_size;
  full.usr_size = header.usr_size;
  full.split_code_data = config_.security.split_code_data_pages;
  const FrameLayout full_layout = FrameLayout::Compute(full);
  jam_stats_.bytes_saved += full_layout.frame_len - layout.frame_len;
  if (entry.cold_link_cycles > config_.jam_cache.hit_relink_cycles) {
    jam_stats_.link_cycles_saved +=
        entry.cold_link_cycles - config_.jam_cache.hit_relink_cycles;
  }

  if ((header.flags & kFlagNoExecute) == 0) {
    vm::Interpreter interp(
        memory, caches, core, &natives_,
        ConfinedExec(entry.image.code_addr, entry.image.code_size));
    const std::uint64_t args[3] = {frame_addr + layout.args_off,
                                   frame_addr + layout.usr_off,
                                   header.usr_size};
    const vm::ExecResult result = interp.Execute(
        entry.image.code_addr + entry.entry_offset, args, member.stack_top);
    host_.core(core).CountInstructions(result.instructions);
    msg.instructions = result.instructions;
    if (!result.status.ok()) {
      return Status(result.status.code(),
                    StrFormat("cached jam (handle %llx) faulted: %s",
                              static_cast<unsigned long long>(handle),
                              result.status.message().c_str()));
    }
    cycles += result.cycles;
    msg.executed = true;
    msg.return_value = result.return_value;
  }
  return cycles;
}

StatusOr<Cycles> Runtime::InstallInJamCache(ElementInfo& elem) {
  if (elem.content_handle == 0 || elem.code_blob.empty()) return Cycles{0};
  if (jam_cache_.contains(elem.content_handle)) return Cycles{0};

  Cycles cycles = 0;
  const std::uint64_t text_bytes = elem.injected_image.text.size();
  if (config_.security.verify_injected_code) {
    // The cached image must stand on its own: it is linked from the
    // element's *resident* blob, not the wire copy the frame verification
    // just covered, and every later by-handle invoke executes it with no
    // body on the wire at all. Verify-at-install keeps the invariant
    // "nothing unverified is ever executable" on the fast path too.
    if (elem.code_blob.size() < text_bytes) {
      return InvalidArgument("code blob smaller than its text");
    }
    vm::VerifyLimits limits;
    limits.got_slots = elem.injected_image.got_slot_count();
    limits.rodata_bytes = elem.code_blob.size() - text_bytes;
    limits.pre_slot_offset = jelf::kPreambleSlotOffset;
    TC_RETURN_IF_ERROR(vm::VerifyCode(
        std::span<const std::uint8_t>(elem.code_blob).first(text_bytes),
        limits));
    cycles += text_bytes / 4;
  }

  // Capacity pressure: evict the entry with the fewest invokes (ties:
  // least recently used, then lowest handle — the map sweep order), so
  // the hot jams the cache exists for are the last to go.
  while (jam_cache_.size() >= config_.jam_cache.capacity) {
    auto victim = jam_cache_.begin();
    for (auto it = jam_cache_.begin(); it != jam_cache_.end(); ++it) {
      if (it->second.invokes < victim->second.invokes ||
          (it->second.invokes == victim->second.invokes &&
           it->second.last_used < victim->second.last_used)) {
        victim = it;
      }
    }
    DropJamCacheEntry(victim->first, /*evicted=*/true);
  }

  // Receiver-built GOTP from the receiver's own namespace — the same
  // values a synced sender would pack, but never taken from the wire (in
  // the hardened mode this is exactly the receiver-installed GOT).
  std::vector<std::uint64_t> gotp;
  gotp.reserve(elem.injected_image.got_symbols.size());
  for (const auto& symbol : elem.injected_image.got_symbols) {
    TC_ASSIGN_OR_RETURN(const std::uint64_t value, ns_.Lookup(symbol));
    gotp.push_back(value);
  }
  TC_ASSIGN_OR_RETURN(
      const jelf::CachedJamImage image,
      jelf::LinkCachedImage(host_.memory(), gotp, elem.code_blob,
                            "tc:jam-cache:" + elem.name));
  if (config_.security.split_code_data_pages) {
    // W^X for the resident image: GOTP/PRE/code were written once above;
    // the only later write is the PRE relink, which rides the privileged
    // DMA plane (jelf::RelinkCachedImage). A jam can therefore never
    // overwrite a cached image and have the bytes invoked by handle.
    Status sealed =
        host_.memory().Protect(image.base, image.size, mem::Perm::kRX);
    if (!sealed.ok()) {
      (void)jelf::ReleaseCachedImage(host_.memory(), image);
      return sealed;
    }
    cycles += config_.mprotect_cycles;
  }

  JamCacheEntry entry;
  entry.image = image;
  entry.elem_id = elem.elem_id;
  entry.entry_offset = elem.entry_offset;
  entry.text_size = text_bytes;
  entry.last_used = ++jam_cache_tick_;
  entry.cold_link_cycles = ColdLinkCyclesFor(elem);
  jam_cache_bytes_ += image.size;
  ++jam_stats_.installs;
  jam_cache_.emplace(elem.content_handle, std::move(entry));
  return cycles + config_.jam_cache.install_cycles +
         static_cast<Cycles>(elem.injected_image.got_slot_count()) *
             config_.got_lookup_cycles;
}

Cycles Runtime::ColdLinkCyclesFor(const ElementInfo& elem) const noexcept {
  // The per-invoke link work a cache hit skips: the sender's GOTP pack
  // (one namespace lookup per slot), plus whatever the security mode adds
  // on every full-body arrival — code verification, the receiver GOT
  // install, and the W^X permission flips (two before execution, one
  // restore after).
  Cycles cycles = static_cast<Cycles>(elem.injected_image.got_slot_count()) *
                  config_.got_lookup_cycles;
  if (config_.security.verify_injected_code) {
    cycles += elem.injected_image.text.size() / 4;
  }
  if (config_.security.receiver_installs_got) {
    cycles += static_cast<Cycles>(elem.injected_image.got_slot_count()) *
              config_.got_lookup_cycles;
  }
  if (config_.security.split_code_data_pages) {
    cycles += 3 * config_.mprotect_cycles;
  }
  return cycles;
}

vm::ExecConfig Runtime::ConfinedExec(mem::VirtAddr code_base,
                                     std::uint64_t code_size) const {
  vm::ExecConfig exec = config_.exec;
  if (!config_.security.confine_control_flow) return exec;
  exec.exec_windows.reserve(library_windows_.size() + 1);
  if (code_size != 0) {
    exec.exec_windows.push_back(vm::MemWindow{code_base, code_size});
  }
  exec.exec_windows.insert(exec.exec_windows.end(), library_windows_.begin(),
                           library_windows_.end());
  return exec;
}

Status Runtime::InjectRawFrame(PeerId from, std::uint32_t slot,
                               std::span<const std::uint8_t> bytes) {
  if (!receiver_started_) return FailedPrecondition("receiver not started");
  if (from >= peers_.size()) return InvalidArgument("unknown peer");
  if (slot >= config_.banks * config_.mailboxes_per_bank) {
    return InvalidArgument("slot outside the peer's mailbox slice");
  }
  if (bytes.size() > config_.mailbox_slot_bytes) {
    return InvalidArgument("frame larger than the mailbox slot");
  }
  PeerState& p = peers_[from];
  if (p.ready.contains(slot)) {
    return FailedPrecondition("slot still holds an undrained frame");
  }
  // The hostile put lands like any RDMA write: straight through the DMA
  // plane, no content checks — the receiver pipeline is the only defense.
  TC_RETURN_IF_ERROR(host_.memory().DmaWrite(SlotAddr(p, slot), bytes));
  engine_.ScheduleAfterOn(
      nic_.lane(), 1,
      [this, from, slot] { OnFrameDelivered(from, slot, engine_.Now()); },
      "tc.inject");
  return Status::Ok();
}

void Runtime::DropJamCacheEntry(std::uint64_t handle, bool evicted) {
  const auto it = jam_cache_.find(handle);
  if (it == jam_cache_.end()) return;
  jam_cache_bytes_ -= it->second.image.size;
  const Status st =
      jelf::ReleaseCachedImage(host_.memory(), it->second.image);
  if (!st.ok()) TC_WARN << "jam-cache release failed: " << st;
  jam_cache_.erase(it);
  if (evicted) {
    ++jam_stats_.evictions;
  } else {
    ++jam_stats_.invalidations;
  }
}

void Runtime::FlushJamCache() {
  while (!jam_cache_.empty()) {
    DropJamCacheEntry(jam_cache_.begin()->first, /*evicted=*/false);
  }
}

void Runtime::ForgetPeerHandles() {
  for (PeerState& peer : peers_) peer.peer_handles.clear();
}

bool Runtime::PeerHasJamHandle(PeerId peer,
                               const std::string& name) const noexcept {
  if (peer >= peers_.size()) return false;
  for (const auto& elem : elements_) {
    if (elem.name == name && elem.kind == pkg::ElementKind::kJam) {
      return peers_[peer].peer_handles.contains(elem.content_handle);
    }
  }
  return false;
}

StatusOr<mem::VirtAddr> Runtime::ReceiverGotFor(ElementInfo& elem,
                                                cpu::CpuCore& core) {
  if (elem.receiver_got != 0) return elem.receiver_got;
  const auto& symbols = elem.injected_image.got_symbols;
  const std::uint64_t bytes = std::max<std::uint64_t>(symbols.size() * 8, 8);
  TC_ASSIGN_OR_RETURN(const mem::VirtAddr table,
                      host_.memory().Allocate(bytes, 64, mem::Perm::kRW,
                                              "tc:recv-got:" + elem.name));
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    auto value = ns_.Lookup(symbols[i]);
    if (!value.ok()) {
      return Status(value.status().code(),
                    StrFormat("receiver GOT for '%s': %s", elem.name.c_str(),
                              value.status().message().c_str()));
    }
    TC_RETURN_IF_ERROR(host_.memory().StoreU64(table + 8ull * i, *value));
  }
  // "from a secure read-only location" — seal the table.
  TC_RETURN_IF_ERROR(
      host_.memory().Protect(table, bytes, mem::Perm::kRead));
  core.Charge(static_cast<Cycles>(symbols.size()) * config_.got_lookup_cycles,
              cpu::CycleClass::kExecute);
  elem.receiver_got = table;
  return table;
}

void Runtime::CompleteFrame(const ReadyFrame& frame,
                            const ReceivedMessage& msg_in, Cycles cycles,
                            std::uint64_t remote_penalty_cycles) {
  ReceivedMessage msg = msg_in;
  auto& core = host_.core(pool_[frame.pool].core_id);
  const PicoTime busy = core.Charge(cycles, cpu::CycleClass::kExecute);
  core.CountMessage();

  // NUMA ledger: a frame drained away from its bank's home domain (stolen
  // cross-domain, or flat placement) counts as remote, and the penalty
  // cycles its processing actually paid land in both stat planes.
  const std::uint32_t frame_domain =
      host_.memory().DomainOf(SlotAddr(peers_[frame.peer], frame.slot));
  if (frame_domain != DomainOfPoolCore(frame.pool)) {
    ++stats_.frames_drained_remote;
    ++pool_[frame.pool].wait_stats.frames_drained_remote;
  }
  stats_.remote_drain_cycles += remote_penalty_cycles;
  pool_[frame.pool].wait_stats.remote_drain_cycles += remote_penalty_cycles;

  engine_.ScheduleAfter(
      busy,
      [this, frame, msg]() mutable {
        msg.completed_at = engine_.Now();
        if (msg.executed) {
          ++stats_.messages_executed;
          ++stats_.per_peer[frame.peer].messages_executed;
        }

        // Bank recycling: after draining a bank of this peer's slice,
        // return its flag to that peer — and only that peer. Banks drain
        // independently (each on its claiming pool core), so the cursor
        // is per bank. The flag goes home exactly when the whole bank has
        // been drained — by the claim holder of record, whether that is
        // the home owner or a thief that took the bank over.
        PeerState& p = peers_[frame.peer];
        const std::uint32_t bank = frame.slot / config_.mailboxes_per_bank;
        // The bank's home as this frame executed. A quiesce/revive that
        // wanted to move it mid-frame is parked in bank_pending_home and
        // applies below, after this frame's bookkeeping settles.
        const std::uint32_t home = p.bank_home[bank];
        // Retire this frame from the backlog ledger before any claim
        // release below moves the bank's remaining count between holders
        // (the map erase itself happens a few lines down). The claim
        // cannot have moved mid-frame, so the holder is frame.pool.
        --claim_backlog_[ClaimOf(frame.peer, bank)];
        p.bank_in_flight[bank] = 0;
        --p.bank_ready[bank];
        if (stealing_active_ && frame.pool != home) {
          ++stats_.frames_stolen;
          ++pool_[frame.pool].wait_stats.frames_stolen;
        }
        const bool bank_drained =
            p.bank_cursor[bank] == config_.mailboxes_per_bank - 1;
        if (bank_drained) {
          if (stealing_active_ && p.bank_claim[bank] != home) {
            ++stats_.banks_drained_stolen;
          } else {
            ++stats_.banks_drained_owner;
          }
          ReleaseBankClaim(frame.peer, bank);
        }
        p.ready.erase(frame.slot);
        p.bank_cursor[bank] =
            (p.bank_cursor[bank] + 1) % config_.mailboxes_per_bank;
        if (stealing_active_ && p.bank_claim[bank] != home &&
            p.bank_ready[bank] == 0) {
          // The steal lease covers the backlog the thief took the bank
          // for. Once no delivered frame of the bank remains, the claim
          // reverts to the home owner so fresh fills land with their
          // stash locality intact (a full drain already reverted above,
          // on the flag-return path).
          ReleaseBankClaim(frame.peer, bank);
        }
        pool_[frame.pool].processing = false;
        // Deferred hotplug handoff: a quiesce/revive that hit this bank
        // mid-frame applies now that the frame is done — the one moment
        // the "never change hands mid-frame" rule allows.
        std::uint32_t rehomed_to = kInvalidPoolIndex;
        if (p.bank_pending_home[bank] != kInvalidPoolIndex) {
          rehomed_to = p.bank_pending_home[bank];
          if (pool_[rehomed_to].state != PoolCoreState::kActive) {
            // The deferred target itself left the pool meanwhile (a second
            // quiesce); re-pick among whoever is active now.
            rehomed_to = PickReshardTarget(
                host_.memory().DomainOf(p.bank_base[bank]));
          }
          if (rehomed_to != kInvalidPoolIndex) {
            ApplyBankHome(frame.peer, bank, rehomed_to);
          }
        }
        // This completion may have been the drain a quiesce was waiting
        // for: with its frame done (and its bank re-homed), the member
        // leaves the pool for good.
        PoolCore& member = pool_[frame.pool];
        if (member.state == PoolCoreState::kDraining && !member.processing) {
          FinishQuiesce(frame.pool);
        }
        if (bank_drained) {
          // Flag return carries the flow-bias hint: is the core that owns
          // this bank — the *current* home, post any re-shard — out of
          // ready work? Evaluated after this frame left the ledger and
          // this pool member went idle, so the hint reflects the state
          // the *next* fill of the bank will meet — O(1) off the backlog
          // ledger, no (peer, bank) sweep on the drain path.
          const std::uint32_t owner = p.bank_home[bank];
          const bool owner_idle =
              pool_[owner].state == PoolCoreState::kActive &&
              !pool_[owner].processing && claim_backlog_[owner] == 0;
          Status st = ReturnBankFlag(frame.peer, bank, owner_idle);
          if (!st.ok()) TC_WARN << "flag return failed: " << st;
        } else if (msg.cache_miss) {
          // A jam-cache miss mid-bank cannot wait for the drain flag —
          // the sender may have nothing else queued toward this bank.
          // Push a NAK-only flag word (bit 0 clear) immediately so the
          // full-body resend leaves now. A miss on the drain slot rides
          // the ReturnBankFlag word above instead.
          Status st = SendNakFlag(frame.peer, bank);
          if (!st.ok()) TC_WARN << "NAK push failed: " << st;
        }
        if (on_executed_) on_executed_(msg);
        MaybeBeginNext(frame.pool);
        // A just-applied re-home must wake the new owner even when
        // stealing is off (OfferStealOpportunities is a no-op then) —
        // its fresh backlog arrived without an OnFrameDelivered.
        if (rehomed_to != kInvalidPoolIndex) MaybeBeginNext(rehomed_to);
        OfferStealOpportunities(frame.pool);
      },
      "tc.complete");
}

cpu::PerfCounters Runtime::ReceiverPoolCounters() const {
  cpu::PerfCounters total;
  for (const PoolCore& member : pool_) {
    const cpu::PerfCounters& c = host_.core(member.core_id).counters();
    for (std::size_t i = 0; i < total.cycles.size(); ++i) {
      total.cycles[i] += c.cycles[i];
    }
    total.instructions += c.instructions;
    total.messages_handled += c.messages_handled;
  }
  return total;
}

std::uint64_t Runtime::InFlightFrames() const noexcept {
  std::uint64_t in_flight = 0;
  for (const PeerState& p : peers_) in_flight += p.ready.size();
  return in_flight;
}

std::uint32_t Runtime::ClosedSendBanks(PeerId peer) const noexcept {
  if (peer >= peers_.size()) return 0;
  std::uint32_t closed = 0;
  for (const std::uint8_t open : peers_[peer].bank_open) {
    if (open == 0) ++closed;
  }
  return closed;
}

Status Runtime::ReturnBankFlag(PeerId peer_id, std::uint32_t bank,
                               bool owner_idle) {
  if (peer_id >= peers_.size()) return FailedPrecondition("not wired");
  PeerState& peer = peers_[peer_id];
  Runtime* peer_rt = peer.runtime;
  const PeerId our_id_at_peer = peer.remote_id;
  ++stats_.bank_flags_returned;
  ++stats_.per_peer[peer_id].bank_flags_returned;
  // Bit 0 opens the bank; bit 1 is the idle hint the sender's flow-bias
  // pick reads: "the core that owns this bank had nothing left to drain".
  // Bits [32, 64) carry the per-slot jam-cache NAK mask: "these by-handle
  // frames named content I do not have — resend them full-body".
  std::uint64_t flag_word = 1ull | (owner_idle ? 2ull : 0ull);
  // Bit 2 echoes a switch ECN mark home (ECE): a frame of this bank
  // arrived marked since the last return. Echoed exactly once — the
  // accumulator clears here — so the fabric-wide echo ledger reconciles.
  if (config_.adaptive.enabled && !peer.bank_ecn.empty() &&
      peer.bank_ecn[bank] != 0) {
    flag_word |= 4ull;
    peer.bank_ecn[bank] = 0;
    ++stats_.ecn_echoes_sent;
  }
  if (config_.jam_cache.enabled && !peer.bank_nak_mask.empty()) {
    flag_word |= static_cast<std::uint64_t>(peer.bank_nak_mask[bank]) << 32;
    peer.bank_nak_mask[bank] = 0;
  }
  TC_ASSIGN_OR_RETURN(
      const ucxs::PutReceipt receipt,
      peer.endpoint->PutInline(
          flag_word, peer.peer_flag_base + 8ull * bank, peer.peer_flag_rkey,
          false,
          [peer_rt, our_id_at_peer, bank](const net::PutCompletion& c) {
            if (c.status.ok()) peer_rt->OnBankFlag(our_id_at_peer, bank);
          }));
  (void)receipt;
  return Status::Ok();
}

Status Runtime::SendNakFlag(PeerId peer_id, std::uint32_t bank) {
  if (peer_id >= peers_.size()) return FailedPrecondition("not wired");
  PeerState& peer = peers_[peer_id];
  if (peer.bank_nak_mask.empty() || peer.bank_nak_mask[bank] == 0) {
    return Status::Ok();
  }
  Runtime* peer_rt = peer.runtime;
  const PeerId our_id_at_peer = peer.remote_id;
  // Bit 0 stays clear: this put does NOT reopen the bank — it only ships
  // the accumulated NAK bits so the sender can resend full-body at once.
  const std::uint64_t flag_word =
      static_cast<std::uint64_t>(peer.bank_nak_mask[bank]) << 32;
  peer.bank_nak_mask[bank] = 0;
  TC_ASSIGN_OR_RETURN(
      const ucxs::PutReceipt receipt,
      peer.endpoint->PutInline(
          flag_word, peer.peer_flag_base + 8ull * bank, peer.peer_flag_rkey,
          false,
          [peer_rt, our_id_at_peer, bank](const net::PutCompletion& c) {
            if (c.status.ok()) peer_rt->OnBankFlag(our_id_at_peer, bank);
          }));
  (void)receipt;
  return Status::Ok();
}

StatusOr<std::uint64_t> Runtime::PeekU64(const std::string& symbol,
                                         std::uint64_t index) const {
  TC_ASSIGN_OR_RETURN(const std::uint64_t addr, ns_.Lookup(symbol));
  if (vm::IsNativeHandle(addr)) {
    return InvalidArgument("symbol is a native function");
  }
  TC_ASSIGN_OR_RETURN(const auto span,
                      host_.memory().RawSpan(addr + 8 * index, 8));
  std::uint64_t value;
  std::memcpy(&value, span.data(), 8);
  return value;
}

}  // namespace twochains::core
