// core::Fabric: an N-host Two-Chains deployment in one object.
//
// The paper's testbed is two hosts wired back-to-back; a production
// deployment serves many clients, which needs many-to-one (incast) and
// all-to-all injection topologies. Fabric owns the discrete-event engine
// and, per simulated host, the memory/caches/cores (net::Host), the NIC,
// the ucxs context/worker, and the Two-Chains runtime. It cables the NICs
// per the chosen topology, connects every linked runtime pair (each side
// gets a dedicated mailbox-bank slice and per-peer flow control), loads
// packages, synchronizes namespaces cluster-wide, and starts the
// receivers.
//
//   core::FabricOptions opts;
//   opts.hosts = 9;
//   opts.topology = core::Topology::kStar;   // hub 0 = incast receiver
//   core::Fabric fabric(opts);
//   fabric.BuildAndLoad(builder, "mypkg");
//   auto peer = fabric.PeerIdFor(3, 0);      // host 3's handle on host 0
//   fabric.runtime(3).Send(*peer, "iput", Invoke::kInjected, args, usr);
//   fabric.Run();
//
// The two-host Testbed (core/two_chains.hpp) is a thin wrapper over a
// 2-host full-mesh Fabric, so every figure bench measures the same code
// path the N-host scenarios run.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/runtime.hpp"
#include "net/host.hpp"
#include "net/nic.hpp"
#include "net/switch.hpp"
#include "pkg/package.hpp"
#include "sim/engine.hpp"
#include "ucxs/ucxs.hpp"

namespace twochains::core {

/// Which host pairs get a back-to-back cable (and a runtime peer link).
enum class Topology : std::uint8_t {
  kFullMesh,  ///< every pair connected: all-to-all injection
  kStar,      ///< every spoke connected to the hub only: incast / fan-out
  /// Switched host -> ToR -> spine tree (see TreeConfig): hosts uplink
  /// into net::Switch fabric instead of direct cables; runtime peering is
  /// hub-spoke like kStar (the incast/fan-out shape), but every frame
  /// crosses 2 or 4 cable segments and contends in shared switch buffers.
  kTree,
};

/// Shape of a Topology::kTree fabric.
struct TreeConfig {
  /// Hosts per ToR switch (ceil(hosts/arity) ToRs are built).
  std::uint32_t arity = 8;
  /// 1 = every host on one switch; 2 = ToRs + one spine.
  std::uint32_t tiers = 2;
  /// ToR-uplink oversubscription: the ToR<->spine trunk carries
  /// arity * nic.wire_gbps / oversub. 1.0 = non-blocking; >1 models the
  /// classic under-provisioned trunk that makes incast marks fire.
  double oversub = 1.0;
};

/// One scheduled pool-core hotplug event: quiesce @p pool_index on
/// @p host at @p quiesce_at (simulated time), optionally reviving it at
/// @p revive_at. Armed by the fabric at wire-up; failures are logged, not
/// fatal (e.g. a plan quiescing the last active core is refused by the
/// runtime and the run continues at full width).
struct QuiescePlan {
  std::uint32_t host = 0;
  std::uint32_t pool_index = 0;
  PicoTime quiesce_at = 0;
  /// 0 = never revive (the core stays out for the rest of the run).
  PicoTime revive_at = 0;
};

struct FabricOptions {
  std::uint32_t hosts = 2;
  Topology topology = Topology::kFullMesh;
  /// Center of a kStar/kTree fabric (ignored for kFullMesh).
  std::uint32_t hub = 0;
  /// Shape of a kTree fabric (ignored otherwise).
  TreeConfig tree{};
  /// Knobs applied to every switch of a kTree fabric (ignored otherwise).
  net::SwitchConfig switches{};
  /// Template for every host; host_id is overridden per host.
  net::HostConfig host{};
  /// Optional per-host overrides; when non-empty must have `hosts` entries
  /// (a size mismatch is logged and the overrides are ignored).
  std::vector<net::HostConfig> host_overrides;
  net::NicConfig nic{};
  /// Event-engine execution config. `engine.lanes > 1` shards event
  /// execution by host lane under conservative lookahead; when
  /// `engine.lookahead_ps` is 0 the fabric derives the safe horizon from
  /// the NIC wire latency (the smallest cross-host event delta). Results
  /// are byte-identical at every lane count.
  sim::EngineConfig engine{};
  ucxs::ProtocolConfig protocol{};
  RuntimeConfig runtime{};
  /// Optional per-host runtime overrides (same contract as host_overrides):
  /// lets e.g. an incast hub run a wide receiver pool while the spokes
  /// keep a single receiver core.
  std::vector<RuntimeConfig> runtime_overrides;

  /// Scheduled pool-core hotplug events (quiesce + optional revive),
  /// armed when the fabric wires up. Append-friendly via WithQuiesce.
  std::vector<QuiescePlan> quiesce_plan;

  /// Arms receiver-pool work stealing on every host: the template and any
  /// runtime_overrides already populated (call after filling those). A
  /// host whose pool stays single-core ignores it (documented no-op).
  FabricOptions& WithStealing(const StealConfig& steal) {
    runtime.steal = steal;
    for (RuntimeConfig& rc : runtime_overrides) rc.steal = steal;
    return *this;
  }

  /// Appends one scheduled hotplug event (see QuiescePlan). The fabric
  /// schedules the quiesce/revive calls on its engine at wire-up, so the
  /// drain happens mid-traffic exactly as a live hotplug would.
  FabricOptions& WithQuiesce(const QuiescePlan& plan) {
    quiesce_plan.push_back(plan);
    return *this;
  }
};

class Fabric {
 public:
  explicit Fabric(FabricOptions options = {});

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Compiles the package and loads it on every host, then wires peers,
  /// synchronizes namespaces cluster-wide, and starts all receivers.
  Status BuildAndLoad(const pkg::PackageBuilder& builder,
                      const std::string& package_name);

  /// Loads an already-built package the same way (same package everywhere).
  Status LoadPackage(const pkg::Package& package);

  /// Loads a *different* package on each host (same element names, possibly
  /// different implementations — the paper's per-process "function
  /// overloading", §IV). @p per_host must have one entry per host.
  Status LoadPackages(const std::vector<const pkg::Package*>& per_host);

  /// Re-runs the cluster-wide namespace exchange over every connected pair
  /// (idempotent; LoadPackage* already does it once).
  Status SyncNamespaces();

  // ------------------------------------------------------------ topology

  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  const FabricOptions& options() const noexcept { return options_; }
  /// True when hosts @p a and @p b share a link in this topology.
  bool Connected(std::uint32_t a, std::uint32_t b) const noexcept;
  /// PeerId under which host @p dst is reachable from host @p src (i.e.
  /// the id to pass to runtime(src).Send). Error when not connected.
  StatusOr<PeerId> PeerIdFor(std::uint32_t src, std::uint32_t dst) const;

  // -------------------------------------------------------------- access

  sim::Engine& engine() noexcept { return engine_; }
  Runtime& runtime(std::uint32_t i) { return *nodes_.at(i).runtime; }
  net::Host& host(std::uint32_t i) { return *nodes_.at(i).host; }
  net::Nic& nic(std::uint32_t i) { return *nodes_.at(i).nic; }

  /// Switches of a kTree fabric (empty otherwise). tiers=2 lays them out
  /// as [ToR 0..T-1, spine].
  std::uint32_t switch_count() const noexcept {
    return static_cast<std::uint32_t>(switches_.size());
  }
  net::Switch& sw(std::uint32_t i) { return *switches_.at(i); }

  /// Runs the engine until it drains.
  void Run() { engine_.Run(); }
  /// Runs until @p done holds (or the event queue drains). True iff held.
  bool RunUntil(const std::function<bool()>& done) {
    return engine_.RunUntilCondition(done);
  }

 private:
  struct Node {
    std::unique_ptr<net::Host> host;
    std::unique_ptr<net::Nic> nic;
    std::unique_ptr<ucxs::Context> context;
    std::unique_ptr<ucxs::Worker> worker;
    std::unique_ptr<Runtime> runtime;
  };

  /// The topology's edge list as ordered (a, b) pairs with a < b. For
  /// kTree these are the *logical* runtime peerings (hub-spoke); the
  /// physical path runs through switches_.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> Edges() const;

  /// Builds the kTree switch fabric: switches, uplinks, routes, lanes.
  void BuildTree();

  /// Initializes runtimes and connects every edge (idempotent).
  Status WireUp();

  FabricOptions options_;
  sim::Engine engine_;
  std::vector<Node> nodes_;
  std::vector<std::unique_ptr<net::Switch>> switches_;
  /// First cabling failure (e.g. a duplicate edge): surfaced by WireUp so
  /// a miswired fabric fails loudly instead of running on shadow state.
  Status cabling_error_ = Status::Ok();
  bool wired_ = false;
};

}  // namespace twochains::core
