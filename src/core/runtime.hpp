// The Two-Chains runtime: one instance per host process.
//
// Responsibilities (§III-§IV of the paper):
//   * reactive mailboxes — pinned, RDMA-writable mailbox banks plus the
//     sender-side bank flags that implement the paper's own flow control
//     ("the receiver has M banks, where each bank has N mailboxes; ...
//     the sender will not send new messages to a bank until the flag for
//     that bank is set", §VI-A2);
//   * package management — loading rieds (auto-running their inits),
//     loading the Local Function library and building the element-ID ->
//     function-pointer vector, and caching each jam's injectable image;
//   * namespace synchronization — after packages load, peers exchange
//     their export tables so a sender can pack a patched GOT (GOTP) with
//     *receiver* virtual addresses;
//   * sending — packing Injected or Local frames, patching the PRE slot,
//     posting one-sided puts through the ucxs endpoint (kUser mode: the
//     runtime's own flow control, not UCX's);
//   * receiving — the reactive receiver agent: waits on the next mailbox
//     signal with POLL or WFE, validates, links (PRE/GOT handling per the
//     security policy), executes through the cache-charged interpreter,
//     and recycles mailbox banks.
//
// Everything runs on one sim::Engine; two Runtimes wired back-to-back are
// the paper's testbed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "core/frame.hpp"
#include "core/security.hpp"
#include "cpu/core.hpp"
#include "cpu/spinwait.hpp"
#include "jamvm/interpreter.hpp"
#include "jelf/loader.hpp"
#include "net/host.hpp"
#include "net/nic.hpp"
#include "pkg/package.hpp"
#include "sim/engine.hpp"
#include "ucxs/ucxs.hpp"

namespace twochains::core {

struct RuntimeConfig {
  std::uint32_t banks = 2;
  std::uint32_t mailboxes_per_bank = 8;
  /// Fixed per-slot capacity; frames must fit.
  std::uint64_t mailbox_slot_bytes = KiB(64);
  cpu::WaitModelConfig wait{};
  std::uint32_t receiver_core = 0;
  std::uint32_t sender_core = 1;
  SecurityPolicy security{};
  /// Fixed-size frames (one put per message, §VI: "we use fixed-size
  /// frames for this study"). Variable mode waits on the header first,
  /// then on the signal, costing an extra wait phase.
  bool fixed_size_frames = true;
  /// Send the signal word as a separate fenced put (required when the
  /// transport does not guarantee write ordering, Fig. 1).
  bool separate_signal_put = false;
  vm::ExecConfig exec{};
  /// Receiver bookkeeping costs (cycles).
  Cycles validate_cycles = 30;
  Cycles dispatch_cycles = 40;
  Cycles pack_base_cycles = 40;
  Cycles got_lookup_cycles = 18;   ///< per GOTP slot packed / installed
  Cycles mprotect_cycles = 700;    ///< per permission flip (split-page mode)
};

/// How a jam is invoked (§IV-B).
enum class Invoke : std::uint8_t { kInjected, kLocal };

struct SendReceipt {
  std::uint32_t sn = 0;
  std::uint64_t frame_len = 0;
  ucxs::Protocol protocol = ucxs::Protocol::kShort;
  /// Sender CPU time consumed (pack + protocol setup).
  PicoTime sender_cost = 0;
};

struct ReceivedMessage {
  std::uint32_t sn = 0;
  std::uint32_t elem_id = 0;
  bool injected = false;
  bool executed = false;
  std::uint64_t frame_len = 0;
  std::uint64_t return_value = 0;
  std::uint64_t instructions = 0;
  PicoTime delivered_at = 0;  ///< signal visible in mailbox memory
  PicoTime completed_at = 0;  ///< processing finished
};

struct RuntimeStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_executed = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bank_flags_returned = 0;
  std::uint64_t send_stalls = 0;       ///< sends refused: bank flag clear
  std::uint64_t security_rejections = 0;
  std::uint64_t wait_episodes = 0;
};

class Runtime {
 public:
  Runtime(sim::Engine& engine, net::Host& host, net::Nic& nic,
          ucxs::Worker& worker, RuntimeConfig config);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Allocates mailboxes/flags/staging, registers RDMA regions, registers
  /// the standard natives. Must be called before Wire().
  Status Initialize();

  /// Exchanges mailbox/flag addresses + rkeys between two runtimes (the
  /// out-of-band wireup of §V) and links their delivery paths.
  static Status Wire(Runtime& a, Runtime& b);

  /// Loads a package on this host: rieds first (with auto-init), then the
  /// Local Function library; caches injectable jam images.
  Status LoadPackage(const pkg::Package& package);

  /// Copies each peer's export table into the other's remote namespace —
  /// the "exchange with the receiver" that lets senders pack GOTP with
  /// receiver VAs (§III-B). Call after both sides loaded packages.
  static Status SyncNamespaces(Runtime& a, Runtime& b);

  // ------------------------------------------------------------- send

  /// True when the current bank accepts another message.
  bool HasFreeSlot() const;

  /// Runs @p cb (once) as soon as a bank flag returns. If a slot is
  /// already free, runs it immediately.
  void NotifyWhenSlotFree(std::function<void()> cb);

  /// Sends jam @p name with the given argument block and user payload.
  /// Fails with kResourceExhausted when flow control blocks (no free bank).
  StatusOr<SendReceipt> Send(const std::string& name, Invoke mode,
                             std::span<const std::uint64_t> args,
                             std::span<const std::uint8_t> usr,
                             std::uint16_t extra_flags = 0);

  /// Frame length a Send of this shape would produce (bench sizing).
  StatusOr<FrameLayout> LayoutFor(const std::string& name, Invoke mode,
                                  std::uint64_t args_bytes,
                                  std::uint64_t usr_bytes) const;

  // ----------------------------------------------------------- receive

  /// Arms the receiver agent (idempotent).
  Status StartReceiver();

  /// Hook invoked (in simulated time) after each message completes.
  void SetOnExecuted(std::function<void(const ReceivedMessage&)> cb) {
    on_executed_ = std::move(cb);
  }

  /// Interference hook: extra delay injected before each message is
  /// processed (models scheduler preemption of the receiver thread by a
  /// co-located stress workload — the Figures 11/12 setup). Return 0 for
  /// "not preempted this time".
  void SetPreemptionHook(std::function<PicoTime()> hook) {
    preemption_hook_ = std::move(hook);
  }

  // ------------------------------------------------------------- intro

  net::Host& host() noexcept { return host_; }
  sim::Engine& engine() noexcept { return engine_; }
  const RuntimeConfig& config() const noexcept { return config_; }
  RuntimeConfig& mutable_config() noexcept { return config_; }
  const RuntimeStats& stats() const noexcept { return stats_; }
  jelf::HostNamespace& ns() noexcept { return ns_; }
  vm::NativeTable& natives() noexcept { return natives_; }
  /// Output of tc_print_* natives executed on this host.
  const std::string& print_output() const noexcept { return print_sink_; }
  cpu::CpuCore& receiver_cpu() { return host_.core(config_.receiver_core); }
  cpu::CpuCore& sender_cpu() { return host_.core(config_.sender_core); }
  /// Reads a value from this host's memory (test/bench verification).
  StatusOr<std::uint64_t> PeekU64(const std::string& symbol,
                                  std::uint64_t index = 0) const;

 private:
  struct ElementInfo {
    pkg::ElementKind kind;
    std::uint32_t elem_id = 0;
    std::string name;
    jelf::LinkedImage injected_image;     // jams
    std::vector<std::uint8_t> code_blob;  // text..rodata, frame CODE bytes
    std::uint64_t entry_offset = 0;       // within the injected blob
    mem::VirtAddr local_entry = 0;        // in the local library (receiver)
    mem::VirtAddr receiver_got = 0;       // hardened: receiver-side table
  };

  struct PeerInfo {
    Runtime* runtime = nullptr;
    mem::VirtAddr mailbox_base = 0;
    mem::RKey mailbox_rkey;
    mem::VirtAddr flag_base = 0;
    mem::RKey flag_rkey;
  };

  struct ReadyFrame {
    std::uint32_t slot = 0;
    PicoTime delivered_at = 0;
  };

  std::uint32_t TotalSlots() const {
    return config_.banks * config_.mailboxes_per_bank;
  }
  mem::VirtAddr SlotAddr(std::uint32_t slot) const {
    return mailbox_base_ + static_cast<std::uint64_t>(slot) *
                               config_.mailbox_slot_bytes;
  }
  mem::VirtAddr StagingAddr(std::uint32_t slot) const {
    return staging_base_ + static_cast<std::uint64_t>(slot) *
                               config_.mailbox_slot_bytes;
  }

  StatusOr<const ElementInfo*> FindElement(const std::string& name) const;

  // Receiver pipeline.
  void OnFrameDelivered(std::uint32_t slot, PicoTime delivered_at);
  void OnBankFlag(std::uint32_t bank);
  void MaybeBeginNext();
  void BeginProcess(const ReadyFrame& frame, PicoTime waited);
  void ProcessFrame(const ReadyFrame& frame);
  void CompleteFrame(const ReceivedMessage& msg, Cycles cycles);
  Status ReturnBankFlag(std::uint32_t bank);

  /// Executes the frame body; returns cycles burned and fills @p msg.
  StatusOr<Cycles> InvokeFrame(const ReadyFrame& frame,
                               const FrameHeader& header,
                               ReceivedMessage& msg);

  /// Hardened mode: per-element receiver-side GOT table.
  StatusOr<mem::VirtAddr> ReceiverGotFor(ElementInfo& elem);

  sim::Engine& engine_;
  net::Host& host_;
  net::Nic& nic_;
  ucxs::Worker& worker_;
  RuntimeConfig config_;
  std::unique_ptr<ucxs::Endpoint> endpoint_;
  std::unique_ptr<cpu::WaitModel> wait_model_;

  // Receiver-side resources.
  mem::VirtAddr mailbox_base_ = 0;
  mem::RKey mailbox_rkey_own_;
  mem::VirtAddr stack_top_ = 0;
  // Sender-side resources.
  mem::VirtAddr staging_base_ = 0;
  mem::VirtAddr flag_base_ = 0;  ///< this host's bank flags (peer sets them)
  mem::RKey flag_rkey_own_;

  PeerInfo peer_;

  jelf::HostNamespace ns_;
  vm::NativeTable natives_;
  std::string print_sink_;
  std::map<std::string, std::uint64_t> remote_ns_;  ///< peer exports
  std::vector<ElementInfo> elements_;
  std::vector<jelf::LoadedLibrary> loaded_libraries_;

  // Sender flow-control state.
  std::uint64_t send_counter_ = 0;
  std::uint32_t next_sn_ = 1;
  std::vector<std::uint8_t> bank_open_;  ///< local mirror of flag words
  std::vector<std::function<void()>> slot_waiters_;

  // Receiver state.
  bool receiver_started_ = false;
  bool processing_ = false;
  std::uint32_t next_recv_slot_ = 0;
  std::optional<PicoTime> idle_since_;
  std::map<std::uint32_t, ReadyFrame> ready_;  ///< by slot

  std::function<void(const ReceivedMessage&)> on_executed_;
  std::function<PicoTime()> preemption_hook_;
  RuntimeStats stats_;
  bool initialized_ = false;
};

}  // namespace twochains::core
