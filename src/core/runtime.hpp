// The Two-Chains runtime: one instance per host process.
//
// Responsibilities (§III-§IV of the paper):
//   * reactive mailboxes — pinned, RDMA-writable mailbox banks plus the
//     sender-side bank flags that implement the paper's own flow control
//     ("the receiver has M banks, where each bank has N mailboxes; ...
//     the sender will not send new messages to a bank until the flag for
//     that bank is set", §VI-A2);
//   * package management — loading rieds (auto-running their inits),
//     loading the Local Function library and building the element-ID ->
//     function-pointer vector, and caching each jam's injectable image;
//   * namespace synchronization — after packages load, peers exchange
//     their export tables so a sender can pack a patched GOT (GOTP) with
//     *receiver* virtual addresses;
//   * sending — packing Injected or Local frames, patching the PRE slot,
//     posting one-sided puts through the per-peer ucxs endpoint (kUser
//     mode: the runtime's own flow control, not UCX's);
//   * receiving — the reactive receiver agent, generalized to a *pool* of
//     receiver cores: inbound mailbox banks are sharded across the pool
//     (stable bank -> core affinity, so LLC-stashed frame bytes land next
//     to the core that will execute them), each pool core runs its own
//     wait loop (POLL or WFE) on the heads of its banks, validates, links
//     (PRE/GOT handling per the security policy), executes through the
//     cache-charged interpreter on its own core and stack, and recycles
//     drained mailbox banks back to the owning sender. Frames stay in
//     order *within* a bank; banks drain concurrently in simulated time.
//     With work stealing enabled (RuntimeConfig::steal), a pool core whose
//     own banks are drained may claim the oldest ready bank head from the
//     most-loaded sibling; the claim — and the duty to drain the bank and
//     return its flag after a full drain — follows the bank until the
//     stolen backlog is cleared, then reverts to the affinity owner. A bank mid-frame can never
//     change claim, so no frame is ever begun twice and in-bank order
//     survives the handoff. Execution is bit-for-bit deterministic:
//     concurrent completions are ordered by the engine's (time, seq) key,
//     never by host-side iteration order, and steal scans sweep pool
//     members and (peer, bank) pairs in index order.
//
// NUMA model: on a multi-domain host (cache::HierarchyConfig.domains > 1)
// every mailbox bank and pool-core stack is placed in the memory domain of
// the pool core that owns it (RuntimeConfig::domain_aware_placement), so
// the NIC's stash lands in the LLC slice next to the executing core.
// Draining a bank away from its home domain — a stolen bank, or flat
// placement — pays the cross-domain penalty on every fill that reaches the
// remote LLC slice or DRAM; the cost is surfaced per frame in
// RuntimeStats::remote_drain_cycles and each pool core's WaitStats.
//
// Hotplug model: a pool core can be taken out of service at runtime
// (Runtime::QuiesceCore): the core stops accepting new frames, finishes the
// frame it is executing (a bank mid-frame never changes hands), and every
// bank homed to it is re-sharded to the surviving active cores — a
// *permanent* home handoff through the same claim machinery work stealing
// uses, not a revertible steal lease. Re-shard placement prefers survivors
// in the bank's own memory domain and falls back across the interconnect
// (paying the measured remote-drain penalty). Bank flags keep returning
// throughout the drain — the survivors now owe them — so senders never
// deadlock on a quiesced core. Runtime::ReviveCore restores the original
// bank -> core affinity map. docs/RUNTIME_LIFECYCLE.md documents the full
// bank-claim state machine (owned -> stolen -> reverted -> re-sharded).
//
// Peer model: a runtime holds a PeerId-indexed peer table. Each connected
// peer gets its own ucxs endpoint, its own slice of inbound mailbox banks
// (so an incast of senders cannot corrupt each other's slots), its own
// sender-side bank-flag mirror, and its own remote-namespace snapshot. The
// paper's testbed is the 2-host special case: two runtimes, one peer each,
// wired back-to-back. N-host fabrics (full mesh, star/incast) are built by
// core::Fabric from the same pairwise Connect() primitive.
//
// Everything runs on one sim::Engine.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "core/frame.hpp"
#include "core/security.hpp"
#include "cpu/core.hpp"
#include "cpu/spinwait.hpp"
#include "jamvm/interpreter.hpp"
#include "jelf/got_rewriter.hpp"
#include "jelf/loader.hpp"
#include "net/host.hpp"
#include "net/nic.hpp"
#include "pkg/package.hpp"
#include "sim/engine.hpp"
#include "ucxs/ucxs.hpp"

namespace twochains::core {

/// Index into a runtime's peer table (dense, assigned at Connect time).
using PeerId = std::uint32_t;
inline constexpr PeerId kInvalidPeer = ~PeerId{0};
/// The peer single-peer callers mean: the first (often only) one wired.
inline constexpr PeerId kDefaultPeer = 0;

/// Work stealing between receiver-pool cores. The bank->core affinity
/// sharding keeps a bank's frames in the cache next to the core that
/// executes them, but leaves a pool core idle whenever its banks are empty
/// while a sibling's banks run deep — exactly the skew an incast fabric
/// produces. With stealing enabled, an idle pool core may claim the oldest
/// ready bank head from the most-loaded sibling; the claim (and with it the
/// duty to drain the bank and, on a full drain, return its flag) follows
/// the bank until the stolen backlog is cleared — at flag return, or as
/// soon as no delivered frame of the bank remains — then reverts to the
/// affinity owner.
struct StealConfig {
  bool enabled = false;
  /// Minimum ready-frame backlog across a sibling's claimed banks before an
  /// idle core sacrifices stash locality and steals. 0 would let a claim
  /// flip with no work behind it (pure claim churn), so Initialize clamps
  /// it to >= 1; oversized values are clamped at steal time to the total
  /// inbound capacity (peers * banks * mailboxes_per_bank — backlog spans
  /// every peer's slice, and the peer table only fills at Connect), so a
  /// huge knob degrades to "steal only at full capacity" instead of a
  /// silently dead config. EffectiveStealThreshold() reports the value
  /// actually in force.
  std::uint32_t threshold = 2;
  /// Schmitt-trigger margin damping claim ping-pong: a core whose previous
  /// steal scan failed needs backlog >= threshold + hysteresis to start
  /// stealing again; while its steals keep succeeding, backlog >= threshold
  /// suffices. Clamped at steal time like threshold.
  std::uint32_t hysteresis = 1;
  /// Domain-aware victim selection: a thief prefers the most-loaded sibling
  /// in its *own* memory domain — even past a deeper remote-domain backlog —
  /// and only crosses the interconnect when no same-domain victim clears
  /// the trigger. Keeps the steal gain while shrinking the cross-domain
  /// toll fig17 measures; a no-op on single-domain hosts.
  bool domain_aware = true;
};

/// Receiver-side jam cache: send-once, invoke-many. The first full-body
/// Injected Function frame of a jam installs its post-GOT-rewrite image
/// (content-addressed by jelf::ComputeJamHandle) in a receiver-resident
/// cache; subsequent invokes ride a slim invoke-by-handle frame
/// (kFlagByHandle) that drops GOTP/CODE, and a hit costs a PRE-slot
/// validation instead of the full per-invoke link. A receiver miss — cold
/// cache, eviction, or a content mismatch after a package reload — is
/// NAKed back to the sender through a per-slot bit mask in the bank flag
/// word, and the sender resends full-body; the protocol degrades
/// gracefully, never errors. The cache is flushed (and senders' handle
/// beliefs cleared) on every namespace re-sync, so a reloaded package can
/// never serve a stale image.
struct JamCacheConfig {
  bool enabled = false;
  /// Cached images per host. The eviction victim is the entry with the
  /// fewest invokes (ties: least recently used, then lowest handle) —
  /// clamped to >= 1 at Initialize when enabled.
  std::uint32_t capacity = 8;
  /// Per-hit cost: validate the cached image's PRE slot (the table-lookup
  /// replacement for the full GOT rewrite).
  Cycles hit_relink_cycles = 12;
  /// Cache bookkeeping charged once per install (hash probe + insert).
  Cycles install_cycles = 60;
};

/// Counter plane of the receiver-side jam cache (monotonic; never reset).
/// Ledger contracts the invariant harnesses enforce at quiescence:
/// receiver-side `hits + misses` == the senders' `by_handle_sends`,
/// `misses == naks_sent`, and across a connected fabric
/// sum(naks_received) == sum(naks_sent) == sum(resends).
struct JamCacheStats {
  // Receiver side.
  std::uint64_t hits = 0;        ///< by-handle frames served from the cache
  std::uint64_t misses = 0;      ///< by-handle frames whose handle was absent
  std::uint64_t installs = 0;    ///< images linked into the cache
  std::uint64_t evictions = 0;   ///< capacity-pressure removals
  std::uint64_t invalidations = 0;  ///< flushes (namespace re-sync, reload)
  std::uint64_t naks_sent = 0;   ///< missed slots flagged back (== misses)
  /// Wire bytes hits avoided: full-body frame_len minus by-handle
  /// frame_len, accumulated per hit.
  std::uint64_t bytes_saved = 0;
  /// Link cycles hits avoided: the cold per-invoke link cost (GOTP pack,
  /// verification, permission flips) minus the hit relink cost.
  std::uint64_t link_cycles_saved = 0;
  // Sender side.
  std::uint64_t by_handle_sends = 0;  ///< slim frames posted
  std::uint64_t naks_received = 0;    ///< NAK bits seen in returned flags
  std::uint64_t resends = 0;          ///< full-body resends after a NAK
};

/// Adaptive per-peer bank flow control (AIMD on the bank-flag RTT signal).
/// The paper's protocol gives a sender a *fixed* number of banks per peer;
/// on a switched fabric an incast hub's uplink saturates long before the
/// bank budget does, and every queued frame pays tail latency. With this
/// enabled, each sender runs a congestion window over its closed-bank
/// count: an ECN mark picked up in a switch queue rides the delivered
/// frame (net::PutCompletion::ecn_marked), the receiver echoes it home in
/// bit 2 of that bank's flag word, and the sender multiplicatively shrinks
/// its window — admission control refuses new banks past the window, so a
/// saturated hub sheds queue depth instead of growing it. Flag returns
/// without an echo additively re-open the window up to the configured bank
/// count. Window bounds are a harness invariant: the window always stays
/// within [min_banks, banks].
struct AdaptiveBankConfig {
  bool enabled = false;
  /// Window floor (banks). Never adapted below — one bank must always be
  /// admissible or the sender deadlocks. Clamped to [1, banks].
  std::uint32_t min_banks = 1;
  /// Additive increase per un-marked flag return, in milli-banks
  /// (250 = a quarter bank per clean RTT). 0 would never recover after a
  /// decrease; clamped to >= 1.
  std::uint32_t additive_increase_milli = 250;
  /// Multiplicative decrease factor on an ECN echo, in milli-units
  /// (500 = halve the window). Values >= 1000 would never decrease (a
  /// dead knob); clamped to 999. At most one decrease per observed
  /// flag RTT, so a burst of echoes from one congestion event does not
  /// collapse the window to the floor.
  std::uint32_t decrease_beta_milli = 500;
};

/// Lifecycle state of one receiver-pool member (see Runtime::QuiesceCore /
/// ReviveCore and docs/RUNTIME_LIFECYCLE.md).
enum class PoolCoreState : std::uint8_t {
  kActive,    ///< serving its homed banks (and stealing, if enabled)
  kDraining,  ///< quiesce requested; finishing its one in-flight frame
  kQuiesced,  ///< out of the pool: no homed banks, no claims, no scans
};

/// Sentinel pool index ("no member"): re-shard target when no core is
/// active, and the bank_pending_home resting value.
inline constexpr std::uint32_t kInvalidPoolIndex = ~std::uint32_t{0};

/// Every knob of one runtime. docs/TUNING.md documents each with its
/// measured effect size and when it is inert; values are clamped (with a
/// warning) against the host's cache model at Initialize().
struct RuntimeConfig {
  /// Inbound mailbox banks per connected peer (the flow-control unit:
  /// a sender may not reuse a bank until its flag returns).
  std::uint32_t banks = 2;
  /// Mailbox slots per bank; banks * mailboxes_per_bank frames can be
  /// outstanding toward each peer.
  std::uint32_t mailboxes_per_bank = 8;
  /// Fixed per-slot capacity; frames must fit.
  std::uint64_t mailbox_slot_bytes = KiB(64);
  /// How pool cores wait on their bank heads (POLL spin vs Arm WFE).
  cpu::WaitModelConfig wait{};
  /// First core of the receiver pool (clamped to the cache model).
  std::uint32_t receiver_core = 0;
  /// Receiver pool size: cores receiver_core .. receiver_core +
  /// receiver_cores - 1 each run their own wait/link/execute loop over
  /// the mailbox banks sharded to them (clamped to the host's core count
  /// at Initialize).
  std::uint32_t receiver_cores = 1;
  /// Core charged for packing + protocol setup on sends. Placing it
  /// inside a widened pool double-books that core's simulated time
  /// (warned); equal to receiver_core with a 1-core pool is the paper's
  /// single-threaded perftest shape.
  std::uint32_t sender_core = 1;
  /// Receiver-pool work stealing (no-op while the pool has a single core).
  StealConfig steal{};
  /// Receiver-side jam cache + invoke-by-handle fast path (see
  /// JamCacheConfig). Requires mailboxes_per_bank <= 32 when enabled (the
  /// NAK mask rides in bits [32, 64) of the bank flag word; clamped with a
  /// warning at Initialize).
  JamCacheConfig jam_cache{};
  /// Domain-aware placement: allocate each inbound mailbox bank and each
  /// pool-core execution stack in the memory domain of the pool core that
  /// owns it, so NIC-stashed frame bytes land in the LLC slice next to the
  /// core that will execute them. Off = everything lands in domain 0 (the
  /// flat-arena behavior); a no-op on single-domain hosts either way.
  bool domain_aware_placement = true;
  /// Adaptive per-peer bank flow control: AIMD over the closed-bank count,
  /// driven by ECN echoes in returned bank-flag words (see
  /// AdaptiveBankConfig). Off = the paper's fixed-bank protocol.
  AdaptiveBankConfig adaptive{};
  /// Receiver-pool-aware flow control: at each bank boundary the sender
  /// prefers, in rotation order from the round-robin target, an open bank
  /// whose owning receiver core reported itself idle in its last flag
  /// return — and falls back to any open bank before stalling. Off =
  /// strict bank round-robin (the paper's protocol).
  bool flow_bias = false;
  /// Verification / GOT-installation / page-permission hardening modes
  /// (§V of the paper); see core/security.hpp.
  SecurityPolicy security{};
  /// Fixed-size frames (one put per message, §VI: "we use fixed-size
  /// frames for this study"). Variable mode waits on the header first,
  /// then on the signal, costing an extra wait phase.
  bool fixed_size_frames = true;
  /// Send the signal word as a separate fenced put (required when the
  /// transport does not guarantee write ordering, Fig. 1).
  bool separate_signal_put = false;
  /// Interpreter limits for executing jams; enforce_exec_permission is
  /// overwritten from `security` at Initialize().
  vm::ExecConfig exec{};
  /// Receiver bookkeeping costs (cycles).
  Cycles validate_cycles = 30;
  Cycles dispatch_cycles = 40;
  Cycles pack_base_cycles = 40;
  Cycles got_lookup_cycles = 18;   ///< per GOTP slot packed / installed
  Cycles mprotect_cycles = 700;    ///< per permission flip (split-page mode)
};

/// How a jam is invoked (§IV-B).
enum class Invoke : std::uint8_t { kInjected, kLocal };

/// What Send() reports back about one posted frame.
struct SendReceipt {
  std::uint32_t sn = 0;             ///< frame sequence number (wire HDR)
  std::uint64_t frame_len = 0;      ///< total packed bytes
  ucxs::Protocol protocol = ucxs::Protocol::kShort;  ///< put path chosen
  /// Sender CPU time consumed (pack + protocol setup).
  PicoTime sender_cost = 0;
  /// True when the frame went out as a slim invoke-by-handle frame (the
  /// sender believed the peer holds the jam's cached image).
  bool by_handle = false;
};

/// One completed inbound frame, as delivered to the SetOnExecuted hook
/// (in simulated time, on the engine).
struct ReceivedMessage {
  std::uint32_t sn = 0;       ///< sender-assigned sequence number
  std::uint32_t elem_id = 0;  ///< element (jam) the frame invoked
  /// Peer table index of the sender on the *receiving* runtime.
  PeerId from = kInvalidPeer;
  bool injected = false;          ///< Injected (code-carrying) vs Local
  bool executed = false;          ///< false for kFlagNoExecute frames
  bool by_handle = false;         ///< arrived as a slim invoke-by-handle frame
  /// By-handle frame whose handle was not cached: not executed, NAKed back
  /// to the sender for a full-body resend.
  bool cache_miss = false;
  std::uint64_t frame_len = 0;    ///< bytes the wire carried
  std::uint64_t return_value = 0; ///< jam return value
  std::uint64_t instructions = 0; ///< VM instructions the jam retired
  /// Mailbox slot (within the sender's slice) the frame arrived in; the
  /// bank is slot / mailboxes_per_bank.
  std::uint32_t slot = 0;
  /// Receiver-pool member that executed the frame (equals the bank's
  /// affinity core unless the bank was stolen).
  std::uint32_t pool = 0;
  PicoTime delivered_at = 0;  ///< signal visible in mailbox memory
  PicoTime completed_at = 0;  ///< processing finished
};

/// Per-peer traffic counters (one entry per peer table slot).
struct PeerStats {
  std::uint64_t messages_sent = 0;      ///< sends *to* this peer
  std::uint64_t messages_delivered = 0; ///< frames delivered *from* this peer
  std::uint64_t messages_executed = 0;  ///< frames executed *from* this peer
  std::uint64_t bytes_sent = 0;
  std::uint64_t send_stalls = 0;        ///< sends to this peer refused
  std::uint64_t bank_flags_returned = 0;///< flags recycled back to this peer
};

/// Whole-runtime counter plane (monotonic; never reset). Ledger
/// invariants the test suites enforce: banks_drained_owner +
/// banks_drained_stolen == bank_flags_returned, and banks_resharded ==
/// the sum of every pool core's WaitStats re-shard mirrors.
struct RuntimeStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_executed = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bank_flags_returned = 0;
  std::uint64_t send_stalls = 0;       ///< sends refused: bank flag clear
  std::uint64_t security_rejections = 0;
  std::uint64_t wait_episodes = 0;
  // Work-stealing ledger. Every returned bank flag is accounted exactly
  // once below: banks_drained_owner + banks_drained_stolen ==
  // bank_flags_returned (the reconciliation the soak suite asserts).
  std::uint64_t steals = 0;            ///< bank-claim handoffs to idle cores
  std::uint64_t frames_stolen = 0;     ///< frames executed off-affinity
  std::uint64_t banks_drained_owner = 0;   ///< flags returned by the owner
  std::uint64_t banks_drained_stolen = 0;  ///< flags returned by a thief
  // NUMA ledger (all zero on single-domain hosts): the locality cost of
  // draining a bank away from its home memory domain — a stolen bank, or
  // flat placement with domain_aware_placement off.
  std::uint64_t frames_drained_remote = 0; ///< frames executed off the bank's home domain
  std::uint64_t remote_drain_cycles = 0;   ///< cross-domain penalty cycles those drains paid
  /// Sends whose bank pick diverged from strict round-robin because
  /// flow_bias steered them toward an idle receiver core's bank.
  std::uint64_t biased_sends = 0;
  // Adaptive bank flow control (see AdaptiveBankConfig). ECN ledger the
  // switch harness reconciles at quiescence: every mark delivered into
  // this runtime's frames is echoed home exactly once, so across a fabric
  // sum(ecn_echoes_sent) == sum(ecn_echoes_seen), and each receiver's
  // ecn_marks_seen equals its NIC's marked non-flag deliveries.
  std::uint64_t ecn_marks_seen = 0;    ///< marked frames delivered to us
  std::uint64_t ecn_echoes_sent = 0;   ///< marks echoed home in flag words
  std::uint64_t ecn_echoes_seen = 0;   ///< echoes observed in returned flags
  std::uint64_t cwnd_increases = 0;    ///< additive window openings
  std::uint64_t cwnd_decreases = 0;    ///< multiplicative backoffs
  std::uint64_t adaptive_refusals = 0; ///< sends refused by the window gate
  // Hotplug ledger (QuiesceCore / ReviveCore). A re-shard is a permanent
  // bank-home migration — counted once per applied home change, in either
  // direction (quiesce handoff or revive restore); per-core mirrors live
  // in each member's WaitStats (banks_resharded_in/out sum to this).
  std::uint64_t banks_resharded = 0;
  /// Frames already delivered into a quiescing core's banks — in flight or
  /// ready — at QuiesceCore time: the stranded backlog the drain protocol
  /// hands over (each QuiesceCore call also returns its own share).
  std::uint64_t frames_drained_during_quiesce = 0;
  /// Counters keyed by PeerId (index == peer table slot).
  std::vector<PeerStats> per_peer;
};

/// The Two-Chains runtime: one per host process (see the file comment
/// for the full model). Lifecycle: construct -> Initialize() ->
/// Connect()/Wire() -> LoadPackage() -> SyncNamespaces() ->
/// StartReceiver(); docs/RUNTIME_LIFECYCLE.md spells out the order and
/// the hotplug protocol. All callbacks (SetOnExecuted, slot waiters) run
/// on the simulation engine — there is no host-thread concurrency
/// anywhere in the model; "thread affinity" always means *simulated*
/// cores (receiver pool members, sender_core).
class Runtime {
 public:
  /// Binds the runtime to its host's engine, memory/caches, NIC, and
  /// ucxs worker. Does not allocate runtime state — Initialize() does.
  Runtime(sim::Engine& engine, net::Host& host, net::Nic& nic,
          ucxs::Worker& worker, RuntimeConfig config);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Allocates the execution stack, registers the standard natives. Must be
  /// called before Connect().
  Status Initialize();

  /// Connects two runtimes pairwise: each side allocates a dedicated slice
  /// of mailbox banks + bank flags + staging for the other, builds a
  /// per-peer endpoint, and exchanges addresses + rkeys (the out-of-band
  /// wireup of §V). Returns the PeerId each side assigned the other:
  /// `first` is b's id within a, `second` is a's id within b. Their NICs
  /// must already be cabled (net::Nic::ConnectTo).
  static StatusOr<std::pair<PeerId, PeerId>> Connect(Runtime& a, Runtime& b);

  /// Back-compat two-host wireup: Connect() discarding the peer ids.
  static Status Wire(Runtime& a, Runtime& b);

  /// Loads a package on this host: rieds first (with auto-init), then the
  /// Local Function library; caches injectable jam images. With
  /// @p allow_reload, a package may redefine symbols and elements already
  /// loaded (hot reload): same-name elements are replaced *in place* and
  /// every jam-cache entry of a replaced element is invalidated, so a
  /// reloaded jam can never execute its stale cached image.
  Status LoadPackage(const pkg::Package& package, bool allow_reload = false);

  /// Copies each runtime's export table into the other's per-peer remote
  /// namespace — the "exchange with the receiver" that lets senders pack
  /// GOTP with receiver VAs (§III-B). Call after both sides loaded
  /// packages; requires Connect() first. Fabric::SyncNamespaces runs this
  /// over every connected pair. Re-syncing also invalidates both sides'
  /// jam-cache state: each receiver flushes its cached images and each
  /// sender forgets which handles the other holds, so a package reloaded
  /// before the sync can never be served stale.
  static Status SyncNamespaces(Runtime& a, Runtime& b);

  // ------------------------------------------------------------- send

  /// True when the current bank toward @p peer accepts another message.
  bool HasFreeSlot(PeerId peer) const;
  bool HasFreeSlot() const { return HasFreeSlot(kDefaultPeer); }

  /// Runs @p cb (once) as soon as a bank flag returns from @p peer. If a
  /// slot is already free, runs it immediately. Flow control is per peer:
  /// exhausting one peer's banks never blocks sends to another.
  void NotifyWhenSlotFree(PeerId peer, std::function<void()> cb);
  void NotifyWhenSlotFree(std::function<void()> cb) {
    NotifyWhenSlotFree(kDefaultPeer, std::move(cb));
  }

  /// Sends jam @p name to @p peer with the given argument block and user
  /// payload. Fails with kResourceExhausted when flow control blocks (no
  /// free bank toward that peer).
  StatusOr<SendReceipt> Send(PeerId peer, const std::string& name, Invoke mode,
                             std::span<const std::uint64_t> args,
                             std::span<const std::uint8_t> usr,
                             std::uint16_t extra_flags = 0);
  StatusOr<SendReceipt> Send(const std::string& name, Invoke mode,
                             std::span<const std::uint64_t> args,
                             std::span<const std::uint8_t> usr,
                             std::uint16_t extra_flags = 0) {
    return Send(kDefaultPeer, name, mode, args, usr, extra_flags);
  }

  /// Frame length a Send of this shape would produce (bench sizing).
  StatusOr<FrameLayout> LayoutFor(const std::string& name, Invoke mode,
                                  std::uint64_t args_bytes,
                                  std::uint64_t usr_bytes) const;

  // ----------------------------------------------------------- receive

  /// Arms the receiver agent (idempotent).
  Status StartReceiver();

  /// Adversarial-testing surface (the fuzz suite): writes @p bytes
  /// verbatim into this receiver's inbound mailbox slot for @p from and
  /// schedules delivery — exactly what a compromised peer with the
  /// exchanged rkey could put on the wire, bypassing every sender-side
  /// packing invariant. Slots must be injected in bank order (the real
  /// transport delivers them that way); @p bytes must fit the slot. The
  /// frame then runs the normal validate/verify/invoke pipeline, so a
  /// hostile frame is expected to surface as a security_rejections tick
  /// and a returned bank flag, never as a stuck or crashed receiver.
  Status InjectRawFrame(PeerId from, std::uint32_t slot,
                        std::span<const std::uint8_t> bytes);

  // ------------------------------------------------------------ hotplug

  /// Takes pool member @p pool_index out of service: marks it draining,
  /// lets its one in-flight frame (if any) complete, and re-shards every
  /// bank homed to it onto the surviving active cores — a *permanent*
  /// handoff (the survivors now own the banks' drains and flag returns),
  /// not a revertible steal. With domain_aware_placement on, re-shard
  /// targets prefer survivors in the bank's own memory domain and fall
  /// back across the interconnect. A bank mid-frame re-homes the moment
  /// its frame completes, so in-bank order and exactly-once execution
  /// survive the hotplug. Returns the stranded backlog handed over:
  /// frames delivered but not yet executed on the quiescing core's banks
  /// (also accumulated in RuntimeStats::frames_drained_during_quiesce).
  /// Fails when the member is already draining/quiesced or when it is the
  /// last active core (the pool must keep at least one survivor).
  StatusOr<std::uint64_t> QuiesceCore(std::uint32_t pool_index);

  /// Brings a quiesced (or still-draining — the drain is simply called
  /// off) pool member back: restores the original affinity map by
  /// re-homing every bank whose affinity owner is @p pool_index back to
  /// it (banks re-sharded away from *other*, still-quiesced cores stay
  /// where they are). Mid-frame banks re-home at frame completion, like
  /// the quiesce path. Fails when the member is already active.
  Status ReviveCore(std::uint32_t pool_index);

  /// Lifecycle state of pool member @p pool_index (bounds-checked, like
  /// the QuiesceCore/ReviveCore mutators it pairs with).
  PoolCoreState pool_core_state(std::uint32_t pool_index) const {
    return pool_.at(pool_index).state;
  }
  /// Pool members currently in PoolCoreState::kActive.
  std::uint32_t ActivePoolCores() const noexcept;
  /// Inbound banks (across every peer's slice) whose current home is pool
  /// member @p pool_index. Zero for a quiesced member once its in-flight
  /// bank (if any) finished re-homing.
  std::uint32_t BanksHomedTo(std::uint32_t pool_index) const noexcept;
  /// Bank re-homes deferred behind an in-flight frame and not yet applied.
  /// Zero whenever the runtime is drained.
  std::uint32_t PendingRehomes() const noexcept;

  /// Hook invoked (in simulated time) after each message completes.
  void SetOnExecuted(std::function<void(const ReceivedMessage&)> cb) {
    on_executed_ = std::move(cb);
  }

  /// Interference hook: extra delay injected before each message is
  /// processed (models scheduler preemption of the receiver thread by a
  /// co-located stress workload — the Figures 11/12 setup). Return 0 for
  /// "not preempted this time".
  void SetPreemptionHook(std::function<PicoTime()> hook) {
    preemption_hook_ = std::move(hook);
  }

  // ------------------------------------------------------------- intro

  net::Host& host() noexcept { return host_; }        ///< owning host
  sim::Engine& engine() noexcept { return engine_; }  ///< shared engine
  /// The configuration in force (post-Initialize clamping).
  const RuntimeConfig& config() const noexcept { return config_; }
  /// Mutable view for tests/stress tooling; mutating shape knobs (banks,
  /// pool width) after Initialize() is undefined — only trigger values
  /// (steal thresholds, cycle costs) are safe to adjust live.
  RuntimeConfig& mutable_config() noexcept { return config_; }
  /// Whole-runtime counters (see RuntimeStats for the ledger contracts).
  const RuntimeStats& stats() const noexcept { return stats_; }
  /// Jam-cache counters (see JamCacheStats for the ledger contracts).
  const JamCacheStats& jam_cache_stats() const noexcept { return jam_stats_; }
  /// Images currently resident in the receiver-side jam cache.
  std::uint32_t JamCacheSize() const noexcept {
    return static_cast<std::uint32_t>(jam_cache_.size());
  }
  /// Bytes of receiver memory the cached images occupy right now.
  std::uint64_t JamCacheResidentBytes() const noexcept {
    return jam_cache_bytes_;
  }
  /// True when the sender believes @p peer holds the cached image of jam
  /// @p name (i.e. the next Send would go by-handle). False for unknown
  /// jams or peers.
  bool PeerHasJamHandle(PeerId peer, const std::string& name) const noexcept;
  /// Number of connected peers (== size of stats().per_peer).
  std::uint32_t peer_count() const noexcept {
    return static_cast<std::uint32_t>(peers_.size());
  }
  /// The PeerId under which @p other is connected, or kInvalidPeer.
  PeerId PeerIdOf(const Runtime& other) const noexcept;
  /// This host's symbol namespace (ried/local exports + natives).
  jelf::HostNamespace& ns() noexcept { return ns_; }
  /// Native functions callable from jams (tc_print_*, etc).
  vm::NativeTable& natives() noexcept { return natives_; }
  /// Output of tc_print_* natives executed on this host.
  const std::string& print_output() const noexcept { return print_sink_; }
  /// The first pool core. With a widened pool this sees only core 0's
  /// share of the drain — use receiver_cpu(i) / ReceiverPoolCounters()
  /// for per-member or whole-pool numbers.
  cpu::CpuCore& receiver_cpu() { return host_.core(config_.receiver_core); }
  /// The core sends are charged to (pack + protocol setup).
  cpu::CpuCore& sender_cpu() { return host_.core(config_.sender_core); }
  /// Size of the receiver pool (after Initialize clamped the config).
  std::uint32_t receiver_pool_size() const noexcept {
    return static_cast<std::uint32_t>(pool_.size());
  }
  /// Counters summed across every pool core — the whole receiver's work
  /// regardless of pool width.
  cpu::PerfCounters ReceiverPoolCounters() const;
  /// The CPU core pool member @p pool_index executes on.
  cpu::CpuCore& receiver_cpu(std::uint32_t pool_index) {
    return host_.core(pool_[pool_index].core_id);
  }
  /// Idle/wakeup ledger of pool member @p pool_index.
  const cpu::WaitStats& receiver_wait_stats(std::uint32_t pool_index) const {
    return pool_[pool_index].wait_stats;
  }
  /// True when work stealing is actually armed: config_.steal.enabled and
  /// the pool has at least two cores. A single-core pool never allocates
  /// steal state (claim tables, steal queues) — enabling stealing there is
  /// a documented no-op.
  bool stealing_active() const noexcept { return stealing_active_; }
  /// Banks pool member @p pool_index currently claims via steal (stolen
  /// backlog not yet cleared). Zero at quiescence: every stolen claim
  /// reverts to the affinity owner when its bank's flag goes home or the
  /// bank has no delivered frames left.
  std::uint32_t StolenBanksHeld(std::uint32_t pool_index) const noexcept {
    return static_cast<std::uint32_t>(pool_[pool_index].stolen_banks.size());
  }
  /// The steal threshold actually in force: config value clamped to the
  /// total inbound capacity across connected peers (an unreachable
  /// threshold would be a dead config, not conservative stealing).
  std::uint32_t EffectiveStealThreshold() const noexcept {
    return std::min(config_.steal.threshold, std::max(1u, MaxStealBacklog()));
  }
  /// The hysteresis margin actually in force (same clamp as the
  /// threshold).
  std::uint32_t EffectiveStealHysteresis() const noexcept {
    return std::min(config_.steal.hysteresis, MaxStealBacklog());
  }
  /// Frames delivered into this runtime's mailboxes and not yet fully
  /// processed (including any a pool core is currently executing). Zero at
  /// drain — the mailbox-leak invariant the soak suite asserts.
  std::uint64_t InFlightFrames() const noexcept;
  /// Outbound banks toward @p peer whose flag has not come back yet. Zero
  /// at drain: every filled bank was recycled by the receiver.
  std::uint32_t ClosedSendBanks(PeerId peer) const noexcept;
  /// Reads a value from this host's memory (test/bench verification).
  StatusOr<std::uint64_t> PeekU64(const std::string& symbol,
                                  std::uint64_t index = 0) const;

  // --------------------------------------------- adaptive flow control

  /// Current adaptive congestion window toward @p peer, in milli-banks
  /// (banks * 1000 when the adaptive config is off).
  std::uint64_t AdaptiveWindowMilli(PeerId peer) const {
    return peers_.at(peer).cwnd_milli;
  }
  /// Observed window bounds since Connect — the harness invariant is that
  /// both always lie within [min_banks, banks] * 1000.
  std::uint64_t AdaptiveWindowMinMilli(PeerId peer) const {
    return peers_.at(peer).cwnd_min_seen;
  }
  std::uint64_t AdaptiveWindowMaxMilli(PeerId peer) const {
    return peers_.at(peer).cwnd_max_seen;
  }
  /// Most recent / smallest bank-flag round-trip observed from @p peer
  /// (0 until the first flag returns).
  PicoTime LastFlagRtt(PeerId peer) const { return peers_.at(peer).rtt_last; }
  PicoTime MinFlagRtt(PeerId peer) const { return peers_.at(peer).rtt_min; }

  /// Test surface: writes @p word into this sender's local flag mirror for
  /// (@p peer, @p bank) and runs the flag-return path on it — exactly what
  /// the peer's inline flag put would do. Lets directed tests forge an ECN
  /// echo (bit 2) and watch the AIMD decrease without building a congested
  /// switch fabric.
  Status InjectFlagWordForTest(PeerId peer, std::uint32_t bank,
                               std::uint64_t word);

 private:
  struct ElementInfo {
    pkg::ElementKind kind;
    std::uint32_t elem_id = 0;
    std::string name;
    jelf::LinkedImage injected_image;     // jams
    std::vector<std::uint8_t> code_blob;  // text..rodata, frame CODE bytes
    std::uint64_t entry_offset = 0;       // within the injected blob
    mem::VirtAddr local_entry = 0;        // in the local library (receiver)
    mem::VirtAddr receiver_got = 0;       // hardened: receiver-side table
    /// Content handle (jelf::ComputeJamHandle over code_blob + GOT shape),
    /// memoized at LoadPackage. Zero for rieds.
    std::uint64_t content_handle = 0;
  };

  /// One resident jam-cache entry: the pre-linked image plus the ledger
  /// the eviction policy and the savings accounting read.
  struct JamCacheEntry {
    jelf::CachedJamImage image;
    std::uint32_t elem_id = 0;
    std::uint64_t entry_offset = 0;  // within the code blob
    std::uint64_t text_size = 0;     // verifiable prefix of the code blob
    std::uint64_t invokes = 0;       // hits served (eviction key)
    std::uint64_t last_used = 0;     // monotonic use tick (tie-break)
    Cycles cold_link_cycles = 0;     // per-invoke link cost a hit skips
  };

  struct ReadyFrame {
    PeerId peer = kInvalidPeer;
    std::uint32_t slot = 0;
    PicoTime delivered_at = 0;
    /// Pool member processing this frame (set when the frame is claimed).
    std::uint32_t pool = 0;
  };

  /// One member of the receiver pool: a core with its own wait loop,
  /// execution stack, and idle bookkeeping, serving the banks sharded
  /// to it.
  struct PoolCore {
    std::uint32_t core_id = 0;
    std::unique_ptr<cpu::WaitModel> wait_model;
    cpu::WaitStats wait_stats;
    mem::VirtAddr stack_top = 0;
    bool processing = false;
    /// Hotplug lifecycle (QuiesceCore / ReviveCore). Only kActive members
    /// scan bank heads, steal, or receive re-sharded banks.
    PoolCoreState state = PoolCoreState::kActive;
    std::optional<PicoTime> idle_since;
    /// Steal queue: banks this core claimed from a sibling and has not yet
    /// drained through flag return (claim reverts to the affinity owner at
    /// that point). Populated only while stealing is active.
    std::vector<std::pair<PeerId, std::uint32_t>> stolen_banks;
    /// Schmitt-trigger state: true while this core's steals keep
    /// succeeding, so re-stealing needs only `threshold` backlog; a failed
    /// steal scan disarms it, raising the bar back to
    /// `threshold + hysteresis`.
    bool steal_armed = false;
  };

  /// Everything this runtime holds per connected peer: the outbound path
  /// (endpoint, staging ring, bank-flag mirror, remote mailbox windows,
  /// remote namespace) and the inbound path (this runtime's mailbox bank
  /// slices that the peer writes, plus where to return that peer's bank
  /// flags). Mailbox banks are allocated and registered *per bank* so each
  /// bank can live in the memory domain of the pool core that owns it.
  struct PeerState {
    Runtime* runtime = nullptr;
    PeerId remote_id = kInvalidPeer;  ///< our slot in the peer's table
    std::unique_ptr<ucxs::Endpoint> endpoint;

    // Outbound: sending to this peer.
    std::vector<mem::VirtAddr> remote_bank_base;  ///< peer memory, per bank
    std::vector<mem::RKey> remote_bank_rkey;
    mem::VirtAddr staging_base = 0;         ///< own memory
    mem::VirtAddr flag_base = 0;   ///< own memory; the peer sets these words
    mem::RKey flag_rkey_own;
    std::vector<std::uint8_t> bank_open;  ///< local mirror of flag words
    /// Idle hint carried home with each bank flag: 1 when the receiver
    /// core owning the bank had nothing left to drain at return time.
    std::vector<std::uint8_t> bank_owner_idle;
    std::uint32_t send_bank = 0;     ///< bank currently being filled
    std::uint32_t send_in_bank = 0;  ///< next slot within send_bank
    std::vector<std::function<void()>> slot_waiters;
    // Adaptive bank flow control, sender side (allocated/maintained only
    // while config_.adaptive.enabled; see AdaptiveBankConfig).
    /// Congestion window over closed banks, in milli-banks. Invariant:
    /// within [min_banks, banks] * 1000 at all times.
    std::uint64_t cwnd_milli = 0;
    std::uint64_t cwnd_min_seen = 0;  ///< observed window low-water mark
    std::uint64_t cwnd_max_seen = 0;  ///< observed window high-water mark
    /// When each bank was closed (engine time; 0 = not closed): the
    /// flag-return RTT sample is now - bank_close_at[bank].
    std::vector<PicoTime> bank_close_at;
    PicoTime rtt_last = 0;  ///< most recent flag-return RTT
    PicoTime rtt_min = 0;   ///< smallest RTT seen (0 until first sample)
    /// One multiplicative decrease per RTT: echoes before this instant
    /// belong to the congestion event already acted on.
    PicoTime ecn_hold_until = 0;
    std::map<std::string, std::uint64_t> remote_ns;  ///< peer exports
    /// Content handles this sender believes the peer's jam cache holds
    /// (populated by the first full-body send, pruned by NAKs, cleared on
    /// namespace re-sync). Only populated while the cache is enabled.
    std::set<std::uint64_t> peer_handles;
    /// In-flight by-handle sends by slot: what to resend full-body if the
    /// returned bank flag NAKs the slot. Entries retire when the flag
    /// comes home (NAK or not). Survives namespace re-syncs on purpose —
    /// a post-sync NAK must still find its resend recipe.
    struct PendingByHandle {
      std::string name;
      std::uint64_t handle = 0;
      std::vector<std::uint64_t> args;
      std::vector<std::uint8_t> usr;
      std::uint16_t extra_flags = 0;
    };
    std::map<std::uint32_t, PendingByHandle> pending_by_handle;

    // Inbound: receiving from this peer.
    std::vector<mem::VirtAddr> bank_base;  ///< own memory; the peer puts here
    std::vector<mem::RKey> bank_rkey_own;
    mem::VirtAddr peer_flag_base = 0;  ///< peer memory (flag return target)
    mem::RKey peer_flag_rkey;
    /// Next in-bank slot to serve, per bank (frames stay ordered within a
    /// bank; banks are independent so the pool can drain them in parallel).
    std::vector<std::uint32_t> bank_cursor;
    std::map<std::uint32_t, ReadyFrame> ready;  ///< by slot
    /// Current *home* of each bank: the pool member that owns its drain
    /// and flag return. Starts at the affinity owner (PoolIndexFor) and
    /// moves only through hotplug re-sharding (QuiesceCore migrates it to
    /// a survivor, ReviveCore restores it) — a steal never touches it.
    std::vector<std::uint32_t> bank_home;
    /// Deferred re-home target for a bank whose frame was in flight when a
    /// quiesce/revive wanted to move it (kInvalidPoolIndex otherwise); the
    /// handoff applies the moment the frame completes, preserving the
    /// "a bank mid-frame never changes hands" rule.
    std::vector<std::uint32_t> bank_pending_home;
    /// Pool member currently claiming each bank (home owner unless
    /// stolen). Allocated only while stealing is active — a 1-core pool or
    /// steal-off run carries no steal-claim state at all.
    std::vector<std::uint32_t> bank_claim;
    /// 1 while a frame of this bank is being processed. Guards every
    /// handoff — steal and re-shard alike: a bank mid-frame cannot change
    /// hands, so no two cores ever serve the same bank concurrently and
    /// the head is never double-begun.
    std::vector<std::uint8_t> bank_in_flight;
    /// Delivered-and-unprocessed frames per bank — kept in lockstep with
    /// `ready` so steal/re-shard decisions read per-holder backlog in O(1)
    /// instead of re-counting the map on every event.
    std::vector<std::uint32_t> bank_ready;
    /// Per-bank NAK accumulator: bit i set when the frame in in-bank slot
    /// i was a by-handle cache miss. Rides home in bits [32, 64) of the
    /// bank flag word at flag-return time, then clears. Allocated only
    /// while the jam cache is enabled.
    std::vector<std::uint32_t> bank_nak_mask;
    /// Receiver-side ECN accumulator: 1 when a frame of this bank arrived
    /// carrying a switch mark; echoed home as bit 2 of the bank's flag
    /// word at return time, then cleared. Allocated only while the
    /// adaptive config is enabled.
    std::vector<std::uint8_t> bank_ecn;
  };

  std::uint32_t TotalSlots() const {
    return config_.banks * config_.mailboxes_per_bank;
  }
  /// Largest ready backlog one claim holder could accumulate: every slot
  /// of every connected peer's inbound slice.
  std::uint32_t MaxStealBacklog() const noexcept {
    return static_cast<std::uint32_t>(peers_.size()) * config_.banks *
           config_.mailboxes_per_bank;
  }
  mem::VirtAddr SlotAddr(const PeerState& peer, std::uint32_t slot) const {
    return peer.bank_base[slot / config_.mailboxes_per_bank] +
           static_cast<std::uint64_t>(slot % config_.mailboxes_per_bank) *
               config_.mailbox_slot_bytes;
  }
  mem::VirtAddr StagingAddr(const PeerState& peer, std::uint32_t slot) const {
    return peer.staging_base + static_cast<std::uint64_t>(slot) *
                                   config_.mailbox_slot_bytes;
  }

  /// Allocates this side's resources for a new peer (mailbox slice, flags,
  /// staging, endpoint); address exchange happens in Connect().
  StatusOr<PeerId> AttachPeer(Runtime& remote);

  StatusOr<const ElementInfo*> FindElement(const std::string& name) const;

  /// The pool member whose *affinity* (peer, bank) is — the stable default
  /// home, so a bank's frames always land in the cache next to the core
  /// that executes them. The peer offset staggers different peers'
  /// same-numbered banks across cores, so shallow traffic from many peers
  /// still spreads. Hotplug re-sharding overrides this per bank via
  /// bank_home; ReviveCore restores it.
  std::uint32_t PoolIndexFor(PeerId peer, std::uint32_t bank) const noexcept {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(peer) + bank) % pool_.size());
  }

  /// The pool member that currently *owns* (peer, bank): the affinity
  /// owner unless a quiesce re-sharded the bank to a survivor.
  std::uint32_t HomeOf(PeerId peer, std::uint32_t bank) const noexcept {
    return peers_[peer].bank_home[bank];
  }

  /// The pool member currently responsible for (peer, bank): the claim
  /// holder when stealing is active, the home owner otherwise.
  std::uint32_t ClaimOf(PeerId peer, std::uint32_t bank) const noexcept {
    return stealing_active_ ? peers_[peer].bank_claim[bank]
                            : peers_[peer].bank_home[bank];
  }

  // Receiver pipeline (each pool core runs its own instance).
  void OnFrameDelivered(PeerId from, std::uint32_t slot,
                        PicoTime delivered_at, bool ecn_marked = false);
  void OnBankFlag(PeerId peer, std::uint32_t bank);
  /// Sender-side admission gate: true when the adaptive window (or, with
  /// the adaptive config off, the plain bank budget) admits opening
  /// another bank toward this peer. Only consulted at bank boundaries.
  bool AdaptiveAdmits(const PeerState& peer) const noexcept;
  /// AIMD window update on a returned bank flag: samples the flag RTT
  /// from the bank's close stamp, shrinks multiplicatively on an ECN echo
  /// (at most once per RTT), grows additively on a clean return.
  void AdaptiveOnFlag(PeerState& peer, std::uint32_t bank, bool ece);
  void MaybeBeginNext(std::uint32_t pool_index);
  /// Earliest-delivered ready bank head among the banks @p pool_index
  /// claims, or nullptr. The returned pointer lives in a peer's ready map.
  const ReadyFrame* ScanBankHeads(std::uint32_t pool_index);
  /// Steal attempt for an idle @p thief: picks the most-loaded sibling
  /// (ready-frame backlog over its claimed banks, ties to the lowest pool
  /// index), and — if the backlog clears the hysteresis-adjusted threshold
  /// — claims that sibling's oldest ready bank head. Returns the stolen
  /// bank's head frame, or nullptr (which disarms the Schmitt trigger).
  const ReadyFrame* TrySteal(std::uint32_t thief);
  /// Removes (peer, bank) from every pool member's steal queue (claim
  /// handoffs migrate the entry; releases retire it).
  void DropFromStealQueues(PeerId peer, std::uint32_t bank);
  /// Reverts (peer, bank) to its home owner and drops it from any
  /// steal queue — called when the bank's flag returns (fully drained)
  /// or its stolen backlog empties out.
  void ReleaseBankClaim(PeerId peer, std::uint32_t bank);
  /// Re-shard target for a bank whose bytes live in @p preferred_domain:
  /// an active survivor in that domain when domain_aware_placement can
  /// find one, any active member otherwise, rotating a cursor through the
  /// candidate list for balance. Returns kInvalidPoolIndex when no member
  /// is active (callers guard against that before re-homing).
  std::uint32_t PickReshardTarget(std::uint32_t preferred_domain);
  /// Applies a bank-home migration *now*: moves the backlog ledger (and
  /// the steal claim, superseding any lease) to @p new_home and bumps the
  /// re-shard counters. Callers must ensure the bank is not mid-frame.
  void ApplyBankHome(PeerId peer, std::uint32_t bank, std::uint32_t new_home);
  /// Re-homes (peer, bank) to @p new_home: immediately when idle, else
  /// deferred until its in-flight frame completes (bank_pending_home).
  void RehomeBank(PeerId peer, std::uint32_t bank, std::uint32_t new_home);
  /// kDraining -> kQuiesced: releases every steal claim the member still
  /// holds so no bank stays parked on a core that will never scan again.
  void FinishQuiesce(std::uint32_t pool_index);
  /// MaybeBeginNext for every pool member except @p first (which already
  /// ran), in pool-index order: gives idle cores a deterministic steal
  /// opportunity whenever load lands or drains somewhere else.
  void OfferStealOpportunities(std::uint32_t first);
  void BeginProcess(const ReadyFrame& frame, PicoTime waited);
  void ProcessFrame(const ReadyFrame& frame);
  /// @p remote_penalty_cycles: cross-domain penalty the frame's processing
  /// paid (delta of the hierarchy's ledger across ProcessFrame).
  void CompleteFrame(const ReadyFrame& frame, const ReceivedMessage& msg,
                     Cycles cycles, std::uint64_t remote_penalty_cycles);
  /// Returns @p bank's flag to @p peer; @p owner_idle rides along as the
  /// flow-bias hint (the receiving sender mirrors it per bank).
  Status ReturnBankFlag(PeerId peer, std::uint32_t bank, bool owner_idle);
  /// flow_bias bank pick at a bank boundary: the first open bank with an
  /// idle-owner hint in rotation order from the round-robin target, else
  /// the first open bank, else the round-robin target (to stall against).
  std::uint32_t PickSendBank(const PeerState& peer) const noexcept;
  /// The memory domain of pool member @p pool_index's core.
  std::uint32_t DomainOfPoolCore(std::uint32_t pool_index) const noexcept;

  /// Executes the frame body; returns cycles burned and fills @p msg.
  StatusOr<Cycles> InvokeFrame(const ReadyFrame& frame,
                               const FrameHeader& header,
                               ReceivedMessage& msg);

  /// Hardened mode: per-element receiver-side GOT table (installed by the
  /// pool core handling the frame).
  StatusOr<mem::VirtAddr> ReceiverGotFor(ElementInfo& elem,
                                         cpu::CpuCore& core);

  // ---------------------------------------------------------- jam cache

  /// By-handle invoke: serve the frame from the cached image (hit) or
  /// record a NAK for the slot (miss — no execution, no error).
  StatusOr<Cycles> InvokeByHandle(const ReadyFrame& frame,
                                  const FrameHeader& header,
                                  ReceivedMessage& msg);
  /// Memoizes @p elem's post-GOT-rewrite image under its content handle
  /// after a full-body injected invoke (evicting under capacity pressure).
  /// Returns the cycles the install cost (zero when already resident).
  StatusOr<Cycles> InstallInJamCache(ElementInfo& elem);
  /// Drops one cache entry, releasing its receiver memory. @p evicted
  /// routes the removal to the right counter (eviction vs invalidation).
  void DropJamCacheEntry(std::uint64_t handle, bool evicted);
  /// Flushes every cached image (namespace re-sync, shutdown).
  void FlushJamCache();
  /// Forgets every handle the peers are believed to hold (re-sync).
  void ForgetPeerHandles();
  /// Sender-side NAK handling: prune the peer's handle belief and resend
  /// the recorded by-handle frames full-body (retrying via
  /// NotifyWhenSlotFree under flow-control pressure). @p retire_served is
  /// true on a full-drain flag, where un-NAKed pending entries are known
  /// served; a mid-bank NAK push leaves them pending.
  void HandleNakMask(PeerId peer, std::uint32_t bank, std::uint32_t mask,
                     bool retire_served);
  /// Pushes @p bank's accumulated NAK bits to @p peer immediately in a
  /// NAK-only flag word (bit 0 clear — the bank is not reopened). Used
  /// when a by-handle miss lands mid-bank, so the full-body resend does
  /// not have to wait for the drain flag.
  Status SendNakFlag(PeerId peer, std::uint32_t bank);
  /// One NAKed invoke's full-body resend (parks on NotifyWhenSlotFree
  /// when flow control refuses it right now).
  void ResendAfterNak(PeerId peer, PeerState::PendingByHandle entry);
  /// The per-invoke link cost a cache hit skips for @p elem: sender GOTP
  /// pack plus whatever the security mode adds (verification, receiver
  /// GOT install, permission flips).
  Cycles ColdLinkCyclesFor(const ElementInfo& elem) const noexcept;
  /// The interpreter config for one invoke: config_.exec, plus — when
  /// security.confine_control_flow is on — exec windows covering the
  /// frame's (or cached image's) code span and every loaded library, the
  /// only memory a verified jam may legitimately fetch instructions from.
  vm::ExecConfig ConfinedExec(mem::VirtAddr code_base,
                              std::uint64_t code_size) const;

  sim::Engine& engine_;
  net::Host& host_;
  net::Nic& nic_;
  ucxs::Worker& worker_;
  RuntimeConfig config_;

  /// The receiver pool (size config_.receiver_cores after clamping); each
  /// member owns its wait model, execution stack, and idle state.
  std::vector<PoolCore> pool_;

  std::vector<PeerState> peers_;

  jelf::HostNamespace ns_;
  vm::NativeTable natives_;
  std::string print_sink_;
  std::vector<ElementInfo> elements_;
  std::vector<jelf::LoadedLibrary> loaded_libraries_;
  /// Exec windows of loaded_libraries_ (rebuilt at LoadPackage), appended
  /// to every confined invoke so jalr through the GOT still reaches rieds.
  std::vector<vm::MemWindow> library_windows_;

  std::uint32_t next_sn_ = 1;

  // Receiver state (per-core state lives in pool_).
  bool receiver_started_ = false;
  /// steal.enabled resolved against the actual pool width at Initialize.
  bool stealing_active_ = false;
  /// Ready-frame backlog per pool member over the banks it claims —
  /// maintained on delivery, completion, and claim handoff, so TrySteal's
  /// victim pick and the flag-return idle hint are O(1)/O(pool) instead
  /// of a (peer, bank) sweep. Invariant while stealing is active:
  /// claim_backlog_[j] == sum of bank_ready over banks with claim j
  /// (without stealing, claims never move, so the sum runs over j's
  /// homed banks). Always allocated (one entry per pool member).
  std::vector<std::uint64_t> claim_backlog_;
  /// Rotates through re-shard candidates so a quiesced core's banks spread
  /// across the survivors instead of piling on one (advanced only by
  /// PickReshardTarget, so runs stay deterministic).
  std::uint32_t reshard_cursor_ = 0;

  // Receiver-side jam cache: content handle -> pre-linked image. The use
  // tick is a monotonic counter (not engine time) so eviction order is
  // independent of timing model changes.
  std::map<std::uint64_t, JamCacheEntry> jam_cache_;
  std::uint64_t jam_cache_tick_ = 0;
  std::uint64_t jam_cache_bytes_ = 0;

  std::function<void(const ReceivedMessage&)> on_executed_;
  std::function<PicoTime()> preemption_hook_;
  RuntimeStats stats_;
  JamCacheStats jam_stats_;
  bool initialized_ = false;
};

}  // namespace twochains::core
