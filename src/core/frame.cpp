#include "core/frame.hpp"

#include <cstring>

#include "common/bitops.hpp"
#include "common/strfmt.hpp"

namespace twochains::core {

FrameLayout FrameLayout::Compute(const FrameSpec& spec) {
  FrameLayout layout;
  std::uint64_t cursor = kHeaderBytes;
  if (spec.by_handle) {
    layout.handle_off = cursor;
    cursor += 8;
  } else if (spec.injected) {
    layout.gotp_off = cursor;
    cursor += 8ull * spec.got_slots;
    // PRE region: 16 bytes ending exactly where code begins, so the
    // rewritten code's pc-relative preamble loads (offset -16) hit it.
    cursor = AlignUp(cursor + 16, 16);
    layout.code_off = cursor;
    layout.pre_off = layout.code_off - 16;
    cursor += spec.code_size;
    if (spec.split_code_data) cursor = AlignUp(cursor, mem::kPageSize);
  }
  layout.args_off = AlignUp(cursor, 8);
  layout.usr_off = layout.args_off + AlignUp(spec.args_size, 8);
  const std::uint64_t end = layout.usr_off + spec.usr_size;
  layout.frame_len = AlignUp(end + 8, kCacheLineBytes);
  layout.sig_off = layout.frame_len - 8;
  return layout;
}

void WriteHeader(const FrameHeader& header, std::span<std::uint8_t> out) {
  std::memcpy(out.data() + 0, &header.magic, 2);
  std::memcpy(out.data() + 2, &header.flags, 2);
  std::memcpy(out.data() + 4, &header.sn, 4);
  std::memcpy(out.data() + 8, &header.frame_len, 4);
  std::memcpy(out.data() + 12, &header.elem_id, 4);
  std::memcpy(out.data() + 16, &header.args_size, 4);
  std::memcpy(out.data() + 20, &header.usr_size, 4);
}

StatusOr<FrameHeader> ReadHeader(std::span<const std::uint8_t> bytes,
                                 std::uint64_t slot_capacity) {
  if (bytes.size() < kHeaderBytes) return DataLoss("truncated frame header");
  FrameHeader header;
  std::memcpy(&header.magic, bytes.data() + 0, 2);
  std::memcpy(&header.flags, bytes.data() + 2, 2);
  std::memcpy(&header.sn, bytes.data() + 4, 4);
  std::memcpy(&header.frame_len, bytes.data() + 8, 4);
  std::memcpy(&header.elem_id, bytes.data() + 12, 4);
  std::memcpy(&header.args_size, bytes.data() + 16, 4);
  std::memcpy(&header.usr_size, bytes.data() + 20, 4);
  if (header.magic != kFrameMagic) {
    return DataLoss(StrFormat("bad frame magic 0x%04x", header.magic));
  }
  // Size-field self-consistency: the smallest legal frame is one cache line
  // (header + signal word), frame_len is always a 64 B multiple, and the
  // declared payload sections plus the trailing signal word must fit inside
  // frame_len. A by-handle frame additionally reserves 8 bytes for the
  // content handle between the header and ARGS.
  if (header.frame_len < kCacheLineBytes ||
      header.frame_len % kCacheLineBytes != 0) {
    return DataLoss(StrFormat("bad frame_len %u", header.frame_len));
  }
  const std::uint64_t fixed =
      kHeaderBytes + ((header.flags & kFlagByHandle) ? 8 : 0);
  const std::uint64_t payload =
      AlignUp(header.args_size, 8) + header.usr_size + 8 /* SIG */;
  if (fixed + payload > header.frame_len) {
    return DataLoss(
        StrFormat("frame sections overflow frame_len %u (args %u usr %u)",
                  header.frame_len, header.args_size, header.usr_size));
  }
  if (slot_capacity != 0 && header.frame_len > slot_capacity) {
    return DataLoss(StrFormat("frame_len %u exceeds slot capacity %llu",
                              header.frame_len,
                              static_cast<unsigned long long>(slot_capacity)));
  }
  return header;
}

StatusOr<std::vector<std::uint8_t>> PackFrame(
    const FrameSpec& spec, FrameHeader header,
    std::span<const std::uint64_t> gotp_values,
    std::span<const std::uint8_t> code, std::span<const std::uint8_t> args,
    std::span<const std::uint8_t> usr) {
  if (spec.by_handle) {
    return InvalidArgument("by-handle frames are packed by PackHandleFrame");
  }
  if (spec.injected) {
    if (gotp_values.size() != spec.got_slots) {
      return InvalidArgument("GOTP value count mismatch");
    }
    if (code.size() != spec.code_size) {
      return InvalidArgument("code size mismatch");
    }
  } else if (!gotp_values.empty() || !code.empty()) {
    return InvalidArgument("local frame cannot carry GOTP/code");
  }
  if (args.size() != spec.args_size || usr.size() != spec.usr_size) {
    return InvalidArgument("payload size mismatch");
  }

  const FrameLayout layout = FrameLayout::Compute(spec);
  std::vector<std::uint8_t> frame(layout.frame_len, 0);

  header.frame_len = static_cast<std::uint32_t>(layout.frame_len);
  header.args_size = static_cast<std::uint32_t>(spec.args_size);
  header.usr_size = static_cast<std::uint32_t>(spec.usr_size);
  header.flags = static_cast<std::uint16_t>(
      header.flags | (spec.injected ? kFlagInjected : 0));
  WriteHeader(header, frame);

  if (spec.injected) {
    if (!gotp_values.empty()) {
      std::memcpy(frame.data() + layout.gotp_off, gotp_values.data(),
                  8 * gotp_values.size());
    }
    if (!code.empty()) {
      std::memcpy(frame.data() + layout.code_off, code.data(), code.size());
    }
  }
  if (!args.empty()) {
    std::memcpy(frame.data() + layout.args_off, args.data(), args.size());
  }
  if (!usr.empty()) {
    std::memcpy(frame.data() + layout.usr_off, usr.data(), usr.size());
  }
  const std::uint64_t sig = SignalWord(header.sn);
  std::memcpy(frame.data() + layout.sig_off, &sig, 8);
  return frame;
}

StatusOr<std::vector<std::uint8_t>> PackHandleFrame(
    const FrameSpec& spec, FrameHeader header, std::uint64_t handle,
    std::span<const std::uint8_t> args, std::span<const std::uint8_t> usr) {
  if (!spec.by_handle) {
    return InvalidArgument("PackHandleFrame requires spec.by_handle");
  }
  if (args.size() != spec.args_size || usr.size() != spec.usr_size) {
    return InvalidArgument("payload size mismatch");
  }

  const FrameLayout layout = FrameLayout::Compute(spec);
  std::vector<std::uint8_t> frame(layout.frame_len, 0);

  header.frame_len = static_cast<std::uint32_t>(layout.frame_len);
  header.args_size = static_cast<std::uint32_t>(spec.args_size);
  header.usr_size = static_cast<std::uint32_t>(spec.usr_size);
  header.flags = static_cast<std::uint16_t>(header.flags | kFlagByHandle);
  WriteHeader(header, frame);

  std::memcpy(frame.data() + layout.handle_off, &handle, 8);
  if (!args.empty()) {
    std::memcpy(frame.data() + layout.args_off, args.data(), args.size());
  }
  if (!usr.empty()) {
    std::memcpy(frame.data() + layout.usr_off, usr.data(), usr.size());
  }
  const std::uint64_t sig = SignalWord(header.sn);
  std::memcpy(frame.data() + layout.sig_off, &sig, 8);
  return frame;
}

StatusOr<std::uint64_t> ReadHandle(std::span<const std::uint8_t> frame,
                                   const FrameHeader& header) {
  if (!(header.flags & kFlagByHandle)) {
    return FailedPrecondition("frame is not by-handle");
  }
  if (frame.size() < kHeaderBytes + 8) {
    return DataLoss("by-handle frame truncated before handle");
  }
  std::uint64_t handle = 0;
  std::memcpy(&handle, frame.data() + kHeaderBytes, 8);
  return handle;
}

Status PatchPreSlot(std::span<std::uint8_t> frame, const FrameLayout& layout,
                    std::uint64_t value) {
  if (layout.code_off == 0) {
    return FailedPrecondition("local frames have no PRE slot");
  }
  if (layout.pre_off + 8 > frame.size()) {
    return OutOfRange("PRE slot outside frame");
  }
  std::memcpy(frame.data() + layout.pre_off, &value, 8);
  return Status::Ok();
}

}  // namespace twochains::core
