// Security policy: the §V mitigation matrix as configuration.
//
// The paper's default is the fastest, least-hardened configuration: all
// mailbox pages RWX, the sender supplies the patched GOT inside the frame,
// and the receiver trusts the frame after magic/sequence checks. Each knob
// below enables one of the §V mitigations; the abl_security_modes bench
// measures what each costs.
#pragma once

#include <cstdint>

namespace twochains::core {

struct SecurityPolicy {
  /// Run the static verifier over injected code before first execution.
  bool verify_injected_code = false;

  /// "Do not accept GOT pointer indirection in the message from a sender.
  /// Have the receiver insert the GOT pointer on message arrival from a
  /// secure read-only location." The receiver keeps a per-element GOT built
  /// from its own namespace and patches PRE itself; sender GOTP bytes are
  /// ignored.
  bool receiver_installs_got = false;

  /// "Separate the user data payload area from the rest of the message ...
  /// writable data will not reside on executable pages." Frames pad
  /// ARGS/USR to a fresh page; the receiver flips the code pages to RX and
  /// the data pages to RW around execution instead of leaving RWX.
  bool split_code_data_pages = false;

  /// Make the ARGS block read-only during execution.
  bool read_only_args = false;

  /// Enforce the X page bit on instruction fetch (costs a page-permission
  /// check per executed page; off reproduces the paper's RWX mailboxes,
  /// on is required for the split_code_data_pages mode to mean anything).
  bool enforce_exec_permission = false;

  /// Virtines-style control-flow confinement: injected code executes with
  /// the interpreter's exec windows set to the frame's CODE section (or the
  /// cached image, on the by-handle path) plus the receiver's loaded
  /// libraries, so a computed jump (`jalr` through a register) can never
  /// land in ARGS/USR bytes, another mailbox frame, or any other unverified
  /// memory. This is the dynamic half of the jalr story — the static
  /// verifier cannot prove register-based targets (see jamvm/verifier.hpp).
  /// Costs ExecConfig::confine_branch_cycles per control transfer.
  bool confine_control_flow = false;

  /// Re-run the static verifier over the resident cached image on every
  /// by-handle invoke, not only at install time. Paranoid mode: the install
  /// verification already covers the cache (images are receiver-private and
  /// sealed RX under split_code_data_pages), so this knob exists to put a
  /// measured price on "trust nothing resident" — it largely cancels the
  /// cache's link-cycle savings (abl_security_modes).
  bool verify_cached_invokes = false;

  static SecurityPolicy PaperDefault() { return SecurityPolicy{}; }

  static SecurityPolicy Hardened() {
    SecurityPolicy p;
    p.verify_injected_code = true;
    p.receiver_installs_got = true;
    p.split_code_data_pages = true;
    p.read_only_args = true;
    p.enforce_exec_permission = true;
    p.confine_control_flow = true;
    return p;
  }
};

}  // namespace twochains::core
