// Security policy: the §V mitigation matrix as configuration.
//
// The paper's default is the fastest, least-hardened configuration: all
// mailbox pages RWX, the sender supplies the patched GOT inside the frame,
// and the receiver trusts the frame after magic/sequence checks. Each knob
// below enables one of the §V mitigations; the abl_security_modes bench
// measures what each costs.
#pragma once

#include <cstdint>

namespace twochains::core {

struct SecurityPolicy {
  /// Run the static verifier over injected code before first execution.
  bool verify_injected_code = false;

  /// "Do not accept GOT pointer indirection in the message from a sender.
  /// Have the receiver insert the GOT pointer on message arrival from a
  /// secure read-only location." The receiver keeps a per-element GOT built
  /// from its own namespace and patches PRE itself; sender GOTP bytes are
  /// ignored.
  bool receiver_installs_got = false;

  /// "Separate the user data payload area from the rest of the message ...
  /// writable data will not reside on executable pages." Frames pad
  /// ARGS/USR to a fresh page; the receiver flips the code pages to RX and
  /// the data pages to RW around execution instead of leaving RWX.
  bool split_code_data_pages = false;

  /// Make the ARGS block read-only during execution.
  bool read_only_args = false;

  /// Enforce the X page bit on instruction fetch (costs a page-permission
  /// check per executed page; off reproduces the paper's RWX mailboxes,
  /// on is required for the split_code_data_pages mode to mean anything).
  bool enforce_exec_permission = false;

  static SecurityPolicy PaperDefault() { return SecurityPolicy{}; }

  static SecurityPolicy Hardened() {
    SecurityPolicy p;
    p.verify_injected_code = true;
    p.receiver_installs_got = true;
    p.split_code_data_pages = true;
    p.read_only_args = true;
    p.enforce_exec_permission = true;
    return p;
  }
};

}  // namespace twochains::core
