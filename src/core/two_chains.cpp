#include "core/two_chains.hpp"

namespace twochains::core {

Testbed::Testbed(TestbedOptions options)
    : options_(std::move(options)),
      host0_(options_.host0),
      host1_(options_.host1),
      nic0_(engine_, host0_, options_.nic),
      nic1_(engine_, host1_, options_.nic),
      ctx0_(engine_, host0_, nic0_, options_.protocol),
      ctx1_(engine_, host1_, nic1_, options_.protocol),
      worker0_(ctx0_),
      worker1_(ctx1_) {
  nic0_.ConnectTo(nic1_);
  runtime0_ = std::make_unique<Runtime>(engine_, host0_, nic0_, worker0_,
                                        options_.runtime);
  runtime1_ = std::make_unique<Runtime>(engine_, host1_, nic1_, worker1_,
                                        options_.runtime);
}

Status Testbed::BuildAndLoad(const pkg::PackageBuilder& builder,
                             const std::string& package_name) {
  TC_ASSIGN_OR_RETURN(const pkg::Package package, builder.Build(package_name));
  return LoadPackage(package);
}

Status Testbed::LoadPackage(const pkg::Package& package) {
  return LoadPackages(package, package);
}

Status Testbed::LoadPackages(const pkg::Package& for_host0,
                             const pkg::Package& for_host1) {
  TC_RETURN_IF_ERROR(runtime0_->Initialize());
  TC_RETURN_IF_ERROR(runtime1_->Initialize());
  TC_RETURN_IF_ERROR(Runtime::Wire(*runtime0_, *runtime1_));
  TC_RETURN_IF_ERROR(runtime0_->LoadPackage(for_host0));
  TC_RETURN_IF_ERROR(runtime1_->LoadPackage(for_host1));
  TC_RETURN_IF_ERROR(Runtime::SyncNamespaces(*runtime0_, *runtime1_));
  TC_RETURN_IF_ERROR(runtime0_->StartReceiver());
  TC_RETURN_IF_ERROR(runtime1_->StartReceiver());
  return Status::Ok();
}

}  // namespace twochains::core
