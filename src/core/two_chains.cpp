#include "core/two_chains.hpp"

namespace twochains::core {

FabricOptions Testbed::ToFabricOptions(TestbedOptions options) {
  FabricOptions fabric;
  fabric.hosts = 2;
  fabric.topology = Topology::kFullMesh;
  fabric.host_overrides = {options.host0, options.host1};
  fabric.nic = options.nic;
  fabric.protocol = options.protocol;
  fabric.runtime = options.runtime;
  return fabric;
}

Testbed::Testbed(TestbedOptions options)
    : fabric_(ToFabricOptions(std::move(options))) {}

Status Testbed::BuildAndLoad(const pkg::PackageBuilder& builder,
                             const std::string& package_name) {
  return fabric_.BuildAndLoad(builder, package_name);
}

Status Testbed::LoadPackage(const pkg::Package& package) {
  return fabric_.LoadPackage(package);
}

Status Testbed::LoadPackages(const pkg::Package& for_host0,
                             const pkg::Package& for_host1) {
  return fabric_.LoadPackages({&for_host0, &for_host1});
}

}  // namespace twochains::core
