#include "core/fabric.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/strfmt.hpp"

namespace twochains::core {

namespace {

// Laned execution needs a nonzero safe horizon: the smallest cross-host
// event delta is the wire propagation latency, so that is the default
// lookahead. A zero-latency wire leaves no horizon — fall back to a
// single executor (results are identical either way, only slower).
sim::EngineConfig EngineConfigFor(const FabricOptions& options) {
  sim::EngineConfig cfg = options.engine;
  if (cfg.lanes == 0) cfg.lanes = 1;
  if (cfg.lookahead_ps == 0) {
    double min_latency_ns = options.nic.wire_latency_ns;
    if (options.topology == Topology::kTree) {
      // Every switch hop is one switch-cable latency in the future, so
      // the safe horizon is the smallest cable in the fabric.
      min_latency_ns = std::min(min_latency_ns,
                                std::max(0.0, options.switches.wire_latency_ns));
    }
    cfg.lookahead_ps = Nanoseconds(min_latency_ns);
  }
  if (cfg.lanes > 1 && cfg.lookahead_ps == 0) {
    TC_WARN << "fabric: zero wire latency leaves no safe lookahead; "
               "running single-lane";
    cfg.lanes = 1;
  }
  return cfg;
}

}  // namespace

Fabric::Fabric(FabricOptions options)
    : options_(std::move(options)), engine_(EngineConfigFor(options_)) {
  if (options_.hosts == 0) {
    TC_WARN << "fabric: hosts=0 is not a fabric; building 1 host";
    options_.hosts = 1;
  }
  if (!options_.host_overrides.empty() &&
      options_.host_overrides.size() != options_.hosts) {
    TC_WARN << "fabric: " << options_.host_overrides.size()
            << " host_overrides for " << options_.hosts
            << " hosts — ignoring overrides, using the host template";
    options_.host_overrides.clear();
  }
  if (!options_.runtime_overrides.empty() &&
      options_.runtime_overrides.size() != options_.hosts) {
    TC_WARN << "fabric: " << options_.runtime_overrides.size()
            << " runtime_overrides for " << options_.hosts
            << " hosts — ignoring overrides, using the runtime template";
    options_.runtime_overrides.clear();
  }
  if (options_.hub >= options_.hosts) {
    TC_WARN << "fabric: hub " << options_.hub << " out of range; using 0";
    options_.hub = 0;
  }
  if (options_.topology == Topology::kTree) {
    if (options_.tree.arity == 0) {
      TC_WARN << "fabric: tree arity 0; using 1";
      options_.tree.arity = 1;
    }
    if (options_.tree.tiers < 1 || options_.tree.tiers > 2) {
      TC_WARN << "fabric: tree tiers " << options_.tree.tiers
              << " unsupported; clamping to " << (options_.tree.tiers < 1 ? 1 : 2);
      options_.tree.tiers = options_.tree.tiers < 1 ? 1 : 2;
    }
    if (options_.tree.oversub <= 0) {
      TC_WARN << "fabric: tree oversub " << options_.tree.oversub
              << " not positive; using 1.0";
      options_.tree.oversub = 1.0;
    }
  }

  nodes_.reserve(options_.hosts);
  for (std::uint32_t i = 0; i < options_.hosts; ++i) {
    net::HostConfig host_cfg = options_.host_overrides.empty()
                                   ? options_.host
                                   : options_.host_overrides[i];
    host_cfg.host_id = static_cast<int>(i);
    Node node;
    node.host = std::make_unique<net::Host>(host_cfg);
    node.nic = std::make_unique<net::Nic>(engine_, *node.host, options_.nic);
    node.nic->set_lane(i);
    node.context = std::make_unique<ucxs::Context>(engine_, *node.host,
                                                   *node.nic,
                                                   options_.protocol);
    node.worker = std::make_unique<ucxs::Worker>(*node.context);
    const RuntimeConfig& runtime_cfg = options_.runtime_overrides.empty()
                                           ? options_.runtime
                                           : options_.runtime_overrides[i];
    node.runtime = std::make_unique<Runtime>(engine_, *node.host, *node.nic,
                                             *node.worker, runtime_cfg);
    nodes_.push_back(std::move(node));
  }

  if (options_.topology == Topology::kTree) {
    // No direct cables: hosts uplink into the switch fabric, which also
    // homes each switch on its own virtual lane past the hosts.
    BuildTree();
    return;
  }

  // Cable the NICs: one dedicated back-to-back link per topology edge. A
  // cabling failure (a duplicate edge would silently shadow the first
  // cable's wire state) is remembered and surfaced by WireUp.
  for (const auto& [a, b] : Edges()) {
    const Status st = nodes_[a].nic->ConnectTo(*nodes_[b].nic);
    if (!st.ok() && cabling_error_.ok()) cabling_error_ = st;
  }

  // One virtual lane per host — always, even when running single-lane, so
  // scalar and laned runs assign identical event keys and every result is
  // byte-identical across lane counts.
  engine_.SetVirtualLanes(options_.hosts);
}

void Fabric::BuildTree() {
  const std::uint32_t hosts = options_.hosts;
  const std::uint32_t arity = options_.tree.arity;
  const std::uint32_t tors =
      options_.tree.tiers == 1 ? 1 : (hosts + arity - 1) / arity;
  const std::uint32_t count = options_.tree.tiers == 1 ? 1 : tors + 1;
  const double trunk_gbps =
      static_cast<double>(arity) * options_.nic.wire_gbps /
      options_.tree.oversub;

  switches_.reserve(count);
  for (std::uint32_t s = 0; s < count; ++s) {
    const bool spine = options_.tree.tiers == 2 && s == tors;
    switches_.push_back(std::make_unique<net::Switch>(
        engine_, options_.switches,
        spine ? std::string("spine") : StrFormat("tor%u", s)));
    switches_.back()->set_lane(hosts + s);
  }

  if (options_.tree.tiers == 1) {
    net::Switch& tor = *switches_[0];
    for (std::uint32_t h = 0; h < hosts; ++h) {
      const std::uint32_t port =
          tor.AttachNic(*nodes_[h].nic, options_.nic.wire_gbps);
      (void)tor.SetRoute(nodes_[h].nic.get(), port);
      nodes_[h].nic->AttachUplink(tor, options_.nic.wire_gbps,
                                  options_.switches.wire_latency_ns);
    }
  } else {
    net::Switch& spine = *switches_[tors];
    std::vector<std::uint32_t> tor_uplink(tors);   // ToR -> spine port
    std::vector<std::uint32_t> spine_down(tors);   // spine -> ToR port
    for (std::uint32_t t = 0; t < tors; ++t) {
      tor_uplink[t] = switches_[t]->AttachSwitch(spine, trunk_gbps);
      spine_down[t] = spine.AttachSwitch(*switches_[t], trunk_gbps);
    }
    for (std::uint32_t h = 0; h < hosts; ++h) {
      const std::uint32_t t = h / arity;
      net::Switch& tor = *switches_[t];
      const std::uint32_t down =
          tor.AttachNic(*nodes_[h].nic, options_.nic.wire_gbps);
      nodes_[h].nic->AttachUplink(tor, options_.nic.wire_gbps,
                                  options_.switches.wire_latency_ns);
      // The host's ToR delivers it on the downlink; every other ToR sends
      // via the spine, which fans back out to the owning ToR.
      (void)tor.SetRoute(nodes_[h].nic.get(), down);
      (void)spine.SetRoute(nodes_[h].nic.get(), spine_down[t]);
      for (std::uint32_t o = 0; o < tors; ++o) {
        if (o == t) continue;
        (void)switches_[o]->SetRoute(nodes_[h].nic.get(), tor_uplink[o]);
      }
    }
  }

  engine_.SetVirtualLanes(hosts + count);
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> Fabric::Edges() const {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  const std::uint32_t n = static_cast<std::uint32_t>(
      nodes_.empty() ? options_.hosts : nodes_.size());
  switch (options_.topology) {
    case Topology::kFullMesh:
      for (std::uint32_t a = 0; a < n; ++a) {
        for (std::uint32_t b = a + 1; b < n; ++b) edges.emplace_back(a, b);
      }
      break;
    case Topology::kStar:
    case Topology::kTree:
      // kTree peers hub-spoke like kStar — the incast/fan-out shape — but
      // the frames ride the switch fabric instead of dedicated cables.
      for (std::uint32_t b = 0; b < n; ++b) {
        if (b == options_.hub) continue;
        edges.emplace_back(std::min(options_.hub, b),
                           std::max(options_.hub, b));
      }
      break;
  }
  return edges;
}

bool Fabric::Connected(std::uint32_t a, std::uint32_t b) const noexcept {
  if (a >= nodes_.size() || b >= nodes_.size() || a == b) return false;
  if (options_.topology == Topology::kTree) {
    return (a == options_.hub) != (b == options_.hub);
  }
  return nodes_[a].nic->ConnectedTo(*nodes_[b].nic);
}

StatusOr<PeerId> Fabric::PeerIdFor(std::uint32_t src,
                                   std::uint32_t dst) const {
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    return InvalidArgument("host index out of range");
  }
  const PeerId id = nodes_[src].runtime->PeerIdOf(*nodes_[dst].runtime);
  if (id == kInvalidPeer) {
    return NotFound(StrFormat(
        "hosts %u and %u are not connected in this topology", src, dst));
  }
  return id;
}

Status Fabric::WireUp() {
  if (wired_) return Status::Ok();
  TC_RETURN_IF_ERROR(cabling_error_);
  for (auto& node : nodes_) {
    TC_RETURN_IF_ERROR(node.runtime->Initialize());
  }
  for (const auto& [a, b] : Edges()) {
    TC_RETURN_IF_ERROR(
        Runtime::Connect(*nodes_[a].runtime, *nodes_[b].runtime).status());
  }
  // Arm the hotplug plan: each quiesce (and optional revive) fires at its
  // simulated instant, mid-traffic. A refused call — e.g. quiescing the
  // last active core, or a revive racing an already-active member — is
  // logged and the run continues; the plan is a scenario, not a contract.
  for (const QuiescePlan& plan : options_.quiesce_plan) {
    if (plan.host >= nodes_.size()) {
      TC_WARN << "quiesce plan: host " << plan.host << " out of range";
      continue;
    }
    Runtime* rt = nodes_[plan.host].runtime.get();
    engine_.ScheduleAtOn(
        plan.host, plan.quiesce_at,
        [rt, plan] {
          const auto stranded = rt->QuiesceCore(plan.pool_index);
          if (!stranded.ok()) {
            TC_WARN << "scheduled quiesce of pool core " << plan.pool_index
                    << " refused: " << stranded.status();
          }
        },
        "fabric.quiesce");
    if (plan.revive_at > 0) {
      engine_.ScheduleAtOn(
          plan.host, plan.revive_at,
          [rt, plan] {
            const Status st = rt->ReviveCore(plan.pool_index);
            if (!st.ok()) {
              TC_WARN << "scheduled revive of pool core " << plan.pool_index
                      << " refused: " << st;
            }
          },
          "fabric.revive");
    }
  }
  wired_ = true;
  return Status::Ok();
}

Status Fabric::BuildAndLoad(const pkg::PackageBuilder& builder,
                            const std::string& package_name) {
  TC_ASSIGN_OR_RETURN(const pkg::Package package, builder.Build(package_name));
  return LoadPackage(package);
}

Status Fabric::LoadPackage(const pkg::Package& package) {
  std::vector<const pkg::Package*> per_host(nodes_.size(), &package);
  return LoadPackages(per_host);
}

Status Fabric::LoadPackages(const std::vector<const pkg::Package*>& per_host) {
  if (per_host.size() != nodes_.size()) {
    return InvalidArgument(StrFormat("need %zu packages, got %zu",
                                     nodes_.size(), per_host.size()));
  }
  TC_RETURN_IF_ERROR(WireUp());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (per_host[i] == nullptr) return InvalidArgument("null package");
    TC_RETURN_IF_ERROR(nodes_[i].runtime->LoadPackage(*per_host[i]));
  }
  TC_RETURN_IF_ERROR(SyncNamespaces());
  for (auto& node : nodes_) {
    TC_RETURN_IF_ERROR(node.runtime->StartReceiver());
  }
  return Status::Ok();
}

Status Fabric::SyncNamespaces() {
  TC_RETURN_IF_ERROR(WireUp());
  for (const auto& [a, b] : Edges()) {
    TC_RETURN_IF_ERROR(
        Runtime::SyncNamespaces(*nodes_[a].runtime, *nodes_[b].runtime));
  }
  return Status::Ok();
}

}  // namespace twochains::core
