// Public API facade: a complete two-host Two-Chains deployment in one
// object. This is the header applications and benchmarks include.
//
//   two_chains::Testbed tb(two_chains::TestbedOptions{});
//   tb.BuildAndLoad(builder, "mypkg");           // compile + load both hosts
//   tb.runtime(0).Send("append", Invoke::kInjected, args, payload);
//   tb.Run();                                    // advance simulated time
//
// The Testbed is the paper's evaluation platform (§VI-C): two simulated
// hosts (memory, caches, cores), a back-to-back NIC pair, the ucxs
// workers, and the two runtimes — fully deterministic. It is implemented
// as the 2-host full-mesh special case of core::Fabric, so every figure
// bench exercises exactly the code path the N-host fabrics scale up.
#pragma once

#include <memory>

#include "core/fabric.hpp"
#include "core/runtime.hpp"
#include "net/host.hpp"
#include "net/nic.hpp"
#include "pkg/package.hpp"
#include "sim/engine.hpp"
#include "ucxs/ucxs.hpp"

namespace twochains::core {

/// Everything configurable about the two-host testbed. The With*()
/// helpers below cover the common toggles; benchlib's PaperTestbed()
/// is the canonical paper parameterization (§VI-C). docs/TUNING.md
/// documents every runtime/cache knob with measured effect sizes.
struct TestbedOptions {
  net::HostConfig host0{};  ///< memory / cache-hierarchy of host 0
  net::HostConfig host1{};  ///< memory / cache-hierarchy of host 1
  net::NicConfig nic{};     ///< shared NIC model (links, stash, DMA)
  ucxs::ProtocolConfig protocol{};  ///< put-protocol thresholds/costs
  RuntimeConfig runtime{};  ///< applied to *both* runtimes

  TestbedOptions() {
    host0.host_id = 0;
    host1.host_id = 1;
  }

  /// Firmware-style toggle: deliver inbound DMA into the LLC or to DRAM.
  TestbedOptions& WithStashing(bool on) {
    nic.stash_to_llc = on;
    return *this;
  }
  TestbedOptions& WithWaitMode(cpu::WaitMode mode) {
    runtime.wait.mode = mode;
    return *this;
  }
  /// Receiver pool width on both hosts (cores receiver_core..+n-1 each run
  /// their own wait/link/execute loop over the banks sharded to them).
  TestbedOptions& WithReceiverCores(std::uint32_t n) {
    runtime.receiver_cores = n;
    return *this;
  }
  /// Arms receiver-pool work stealing on both hosts (a no-op until the
  /// pool is widened past one core, see RuntimeConfig::steal).
  TestbedOptions& WithStealing(const StealConfig& steal) {
    runtime.steal = steal;
    return *this;
  }
  /// Splits both hosts' arenas and caches into @p domains memory domains
  /// (NUMA nodes); see cache::HierarchyConfig::domains.
  TestbedOptions& WithDomains(std::uint32_t domains) {
    host0.cache.domains = domains;
    host1.cache.domains = domains;
    return *this;
  }
  /// Receiver-pool-aware flow control on both hosts' senders (see
  /// RuntimeConfig::flow_bias).
  TestbedOptions& WithFlowBias(bool on) {
    runtime.flow_bias = on;
    return *this;
  }
  TestbedOptions& WithSecurity(const SecurityPolicy& policy) {
    runtime.security = policy;
    return *this;
  }
  /// Arms the receiver-side jam cache on both hosts (send-once,
  /// invoke-many; see RuntimeConfig::jam_cache).
  TestbedOptions& WithJamCache(const JamCacheConfig& cache) {
    runtime.jam_cache = cache;
    return *this;
  }
};

/// The paper's evaluation platform in one object: two simulated hosts
/// wired back-to-back, implemented as the 2-host full-mesh special case
/// of core::Fabric (so every figure bench exercises exactly the code
/// path the N-host fabrics scale up). Construction builds and cables
/// both hosts; call one of the Load* methods before sending — they run
/// the whole Initialize -> Connect -> LoadPackage -> SyncNamespaces ->
/// StartReceiver sequence (see docs/RUNTIME_LIFECYCLE.md).
class Testbed {
 public:
  explicit Testbed(TestbedOptions options = {});

  /// Compiles the package and loads it on both hosts, then synchronizes
  /// namespaces and starts both receivers.
  Status BuildAndLoad(const pkg::PackageBuilder& builder,
                      const std::string& package_name);

  /// Loads an already-built package the same way.
  Status LoadPackage(const pkg::Package& package);

  /// Loads a *different* package on each host (same element names, possibly
  /// different implementations — the paper's per-process "function
  /// overloading", §IV), then synchronizes namespaces and starts receivers.
  Status LoadPackages(const pkg::Package& for_host0,
                      const pkg::Package& for_host1);

  /// The shared discrete-event engine both hosts run on.
  sim::Engine& engine() noexcept { return fabric_.engine(); }
  /// Runtime of host 0 or 1.
  Runtime& runtime(int host) {
    return fabric_.runtime(static_cast<std::uint32_t>(host));
  }
  /// Simulated host 0 or 1 (memory, caches, cores, regions).
  net::Host& host(int i) {
    return fabric_.host(static_cast<std::uint32_t>(i));
  }
  /// NIC of host 0 or 1.
  net::Nic& nic(int i) { return fabric_.nic(static_cast<std::uint32_t>(i)); }
  /// The underlying 2-host fabric.
  Fabric& fabric() noexcept { return fabric_; }

  /// Runs the engine until it drains.
  void Run() { fabric_.Run(); }
  /// Runs until @p done holds (or the event queue drains). True iff held.
  bool RunUntil(const std::function<bool()>& done) {
    return fabric_.RunUntil(done);
  }

 private:
  static FabricOptions ToFabricOptions(TestbedOptions options);

  Fabric fabric_;
};

}  // namespace twochains::core

/// Convenience namespace alias for applications.
namespace two_chains = twochains::core;
