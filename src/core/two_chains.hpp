// Public API facade: a complete two-host Two-Chains deployment in one
// object. This is the header applications and benchmarks include.
//
//   two_chains::Testbed tb(two_chains::TestbedOptions{});
//   tb.BuildAndLoad(builder, "mypkg");           // compile + load both hosts
//   tb.runtime(0).Send("append", Invoke::kInjected, args, payload);
//   tb.Run();                                    // advance simulated time
//
// The Testbed owns the discrete-event engine, both simulated hosts
// (memory, caches, cores), the back-to-back NIC pair, the ucxs workers, and
// the two runtimes — the exact shape of the paper's evaluation platform
// (§VI-C), fully deterministic.
#pragma once

#include <memory>

#include "core/runtime.hpp"
#include "net/host.hpp"
#include "net/nic.hpp"
#include "pkg/package.hpp"
#include "sim/engine.hpp"
#include "ucxs/ucxs.hpp"

namespace twochains::core {

struct TestbedOptions {
  net::HostConfig host0{};
  net::HostConfig host1{};
  net::NicConfig nic{};
  ucxs::ProtocolConfig protocol{};
  RuntimeConfig runtime{};

  TestbedOptions() {
    host0.host_id = 0;
    host1.host_id = 1;
  }

  /// Firmware-style toggle: deliver inbound DMA into the LLC or to DRAM.
  TestbedOptions& WithStashing(bool on) {
    nic.stash_to_llc = on;
    return *this;
  }
  TestbedOptions& WithWaitMode(cpu::WaitMode mode) {
    runtime.wait.mode = mode;
    return *this;
  }
  TestbedOptions& WithSecurity(const SecurityPolicy& policy) {
    runtime.security = policy;
    return *this;
  }
};

class Testbed {
 public:
  explicit Testbed(TestbedOptions options = {});

  /// Compiles the package and loads it on both hosts, then synchronizes
  /// namespaces and starts both receivers.
  Status BuildAndLoad(const pkg::PackageBuilder& builder,
                      const std::string& package_name);

  /// Loads an already-built package the same way.
  Status LoadPackage(const pkg::Package& package);

  /// Loads a *different* package on each host (same element names, possibly
  /// different implementations — the paper's per-process "function
  /// overloading", §IV), then synchronizes namespaces and starts receivers.
  Status LoadPackages(const pkg::Package& for_host0,
                      const pkg::Package& for_host1);

  sim::Engine& engine() noexcept { return engine_; }
  Runtime& runtime(int host) { return host == 0 ? *runtime0_ : *runtime1_; }
  net::Host& host(int i) { return i == 0 ? host0_ : host1_; }
  net::Nic& nic(int i) { return i == 0 ? nic0_ : nic1_; }

  /// Runs the engine until it drains.
  void Run() { engine_.Run(); }
  /// Runs until @p done holds (or the event queue drains). True iff held.
  bool RunUntil(const std::function<bool()>& done) {
    return engine_.RunUntilCondition(done);
  }

 private:
  TestbedOptions options_;
  sim::Engine engine_;
  net::Host host0_;
  net::Host host1_;
  net::Nic nic0_;
  net::Nic nic1_;
  ucxs::Context ctx0_;
  ucxs::Context ctx1_;
  ucxs::Worker worker0_;
  ucxs::Worker worker1_;
  std::unique_ptr<Runtime> runtime0_;
  std::unique_ptr<Runtime> runtime1_;
};

}  // namespace twochains::core

/// Convenience namespace alias for applications.
namespace two_chains = twochains::core;
